// Discrete-event simulation engine.
//
// A single-threaded event calendar: callbacks are scheduled at absolute
// virtual times and executed in (time, insertion-order) order. Everything in
// wdmlat — hardware devices, the kernel, workloads, the measurement drivers —
// is driven from this calendar. There is no wall-clock anywhere; virtual
// hours of Windows activity run in wall-clock seconds.
//
// The calendar is a two-tier ladder queue tuned for the dominant traffic:
// short-horizon periodic timers (PIT ticks, DPC completions, driver
// timeouts). A ring of near-future buckets gives O(1) insertion for
// everything inside a ~112 ms horizon; beyond that a binary-heap overflow
// tier holds the far future and migrates entries into the ring as the
// window slides over them. Same-tick (and same-bucket) expirations drain
// through one sorted batch per bucket epoch instead of per-event heap pops.
// The hot path is allocation-free in steady state: event records live in a
// slab/free-list EventPool, callbacks are small-buffer-optimized
// InplaceCallbacks, and every tier stores plain POD entries. Cancelled
// events leave stale entries behind that are lazily purged when their epoch
// drains and bulk-compacted when they outnumber the live ones (see
// DESIGN.md §7 for the invariants).

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/sim/event_pool.h"
#include "src/sim/inplace_callback.h"
#include "src/sim/time.h"

namespace wdmlat::sim {

class Engine;

// Cancellable reference to a scheduled event: {pool, slot, generation}.
// Default-constructed handles are inert; cancelling an already-fired or
// already-cancelled event is a no-op, as is cancelling through a handle whose
// slot has been recycled for a newer event or whose engine has been
// destroyed (the handle's pool reference keeps the slot memory valid).
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(const EventHandle& other)
      : pool_(other.pool_), generation_(other.generation_), slot_(other.slot_) {
    if (pool_ != nullptr) {
      pool_->AddRef();
    }
  }
  EventHandle(EventHandle&& other) noexcept
      : pool_(other.pool_), generation_(other.generation_), slot_(other.slot_) {
    other.pool_ = nullptr;
  }
  EventHandle& operator=(const EventHandle& other) {
    EventHandle copy(other);
    swap(copy);
    return *this;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    swap(other);
    return *this;
  }
  ~EventHandle() {
    if (pool_ != nullptr) {
      pool_->Release();
    }
  }

  // True if the event is still pending (not fired, not cancelled).
  bool pending() const { return pool_ != nullptr && pool_->generation(slot_) == generation_; }

  // Prevent the event from firing. Safe to call in any state.
  void Cancel() {
    if (pool_ != nullptr) {
      pool_->CancelIfCurrent(slot_, generation_);
    }
  }

 private:
  friend class Engine;
  EventHandle(EventPool* pool, std::uint32_t slot, std::uint64_t generation)
      : pool_(pool), generation_(generation), slot_(slot) {
    pool_->AddRef();
  }
  void swap(EventHandle& other) noexcept {
    std::swap(pool_, other.pool_);
    std::swap(generation_, other.generation_);
    std::swap(slot_, other.slot_);
  }

  EventPool* pool_ = nullptr;
  std::uint64_t generation_ = 0;
  std::uint32_t slot_ = EventPool::kInvalidSlot;
};

class Engine {
 public:
  using Callback = InplaceCallback;

  // --- Ladder geometry (public so the differential / rollover tests can
  // target tier boundaries exactly) ----------------------------------------
  // One bucket spans 2^16 cycles ≈ 218 µs at the simulated 300 MHz: wide
  // enough that a PIT tick's worth of dispatcher traffic lands in one or two
  // buckets, narrow enough that a bucket's sort stays small.
  static constexpr std::uint32_t kBucketBits = 16;
  static constexpr Cycles kBucketWidth = Cycles{1} << kBucketBits;
  // 512 buckets ≈ 112 ms of near-future horizon — past every PIT period,
  // DPC completion, and scheduler quantum either OS profile uses. Longer
  // delays (workload think times, watchdog periods) take the overflow heap.
  static constexpr std::uint32_t kRingBits = 9;
  static constexpr std::uint32_t kBucketCount = 1u << kRingBits;
  static constexpr std::uint32_t kRingMask = kBucketCount - 1;
  static constexpr Cycles kHorizonCycles = Cycles{kBucketCount} << kBucketBits;

  Engine() : pool_(new EventPool) { occupied_.fill(0); }
  ~Engine() {
    pool_->Shutdown();
    pool_->Release();
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Current virtual time. Monotonically non-decreasing.
  Cycles now() const { return now_; }

  // Schedule `cb` at absolute time `when`. Times in the past are clamped to
  // now(). Events scheduled for the same instant fire in insertion order.
  // The callable is constructed directly into its pool slot, so for captures
  // within InplaceCallback::kInlineSize this performs no heap allocation.
  template <typename F>
  EventHandle ScheduleAt(Cycles when, F&& cb) {
    if (when < now_) {
      when = now_;
    }
    const std::uint32_t slot = pool_->Allocate(std::forward<F>(cb));
    const std::uint64_t generation = pool_->generation(slot);
    Insert(QueueEntry{when, next_seq_++, generation, slot});
    return EventHandle(pool_, slot, generation);
  }

  // Schedule `cb` `delay` cycles from now.
  template <typename F>
  EventHandle ScheduleAfter(Cycles delay, F&& cb) {
    return ScheduleAt(now_ + delay, std::forward<F>(cb));
  }

  // Execute the next pending event, if any. Returns false when the calendar
  // is empty.
  bool Step() {
    QueueEntry entry;
    if (!PopNextLive(kNoDeadline, &entry)) {
      return false;
    }
    Fire(entry);
    return true;
  }

  // Run events until the calendar is empty or a callback calls RequestStop().
  void RunUntilIdle();

  // Run all events with time <= `deadline` (or until RequestStop()), then
  // advance now() to `deadline`.
  void RunUntil(Cycles deadline);

  // Abort a RunUntil / RunUntilIdle loop from inside a callback.
  void RequestStop() { stop_requested_ = true; }

  // Warm reuse: return the engine to its freshly constructed state — time 0,
  // sequence 0, empty calendar — while keeping every tier's grown capacity
  // (bucket vectors, overflow heap, drain batch, pool slabs). Outstanding
  // events are cancelled wholesale (their captured state is released and
  // stale handles read "not pending"), so callers must have torn down
  // anything that expects its callbacks to still fire. A run on a reset
  // engine is bit-identical to one on a new engine: fire order is (when,
  // seq) and both restart from zero (guarded by the fleet golden-checksum
  // test). Defined in engine.cc.
  void Reset();

  std::uint64_t events_processed() const { return events_processed_; }

  // Number of scheduled-and-not-yet-fired events, excluding cancelled ones
  // (their calendar entries linger until lazily purged when their bucket
  // drains or bulk-compacted, but they no longer count). Tests can therefore
  // assert on calendar size.
  std::size_t events_pending() const { return pool_->live(); }

  // Observability: stale (cancelled) entries still occupying the calendar,
  // and how many times the calendar has been compacted.
  std::size_t stale_entries() const {
    const std::size_t stored = StoredEntries();
    return stored > pool_->live() ? stored - pool_->live() : 0;
  }
  std::uint64_t compactions() const { return compactions_; }

  // Invariant audit for sim::InvariantAuditor: validates the ladder's
  // bucket-index/epoch consistency (every ring entry lives in the bucket its
  // epoch maps to, inside the current window), the occupancy bitmap, the
  // overflow tier's heap ordering and beyond-horizon placement, the drain
  // batch's (when, seq) sort, that no live entry is scheduled in the past,
  // that every live pool slot owns exactly one calendar entry (count
  // conservation across tiers), that sequence numbers were issued before
  // next_seq_, and the pool's slab/free-list/generation consistency.
  // Appends one line per violation; appends nothing when healthy.
  void AuditCalendar(std::vector<std::string>* violations) const;

 private:
  // POD calendar entry: no refcounts, no indirection on sift. `generation`
  // pins the entry to one pool-slot incarnation; a mismatch means the event
  // was cancelled (or fired through an earlier entry) and the entry is dead.
  struct QueueEntry {
    Cycles when;
    std::uint64_t seq;
    std::uint64_t generation;
    std::uint32_t slot;
  };
  // Comparator for the overflow tier's std::push_heap/pop_heap: the front of
  // the heap is the entry that fires first, so "less" means "fires later".
  struct FiresLater {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };
  // Comparator for the drain batch's sort and mid-drain sorted inserts:
  // ascending (when, seq), the engine's total fire order.
  struct FiresEarlier {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) {
        return a.when < b.when;
      }
      return a.seq < b.seq;
    }
  };

  static constexpr Cycles kNoDeadline = std::numeric_limits<Cycles>::max();
  // Below this calendar size, compaction is never worth the full-ring sweep;
  // the lazy purge on drain handles small backlogs for free.
  static constexpr std::size_t kCompactMinEntries = 64;

  static constexpr std::uint64_t EpochOf(Cycles when) { return when >> kBucketBits; }

  // Route one entry to its tier. Entries below the window (possible after
  // the drain cursor out-ran now() across dead epochs) ride the current
  // epoch's bucket/batch: nothing with a smaller (when, seq) exists anywhere,
  // and the batch sort puts them first, so the total order is preserved.
  void Insert(const QueueEntry& entry) {
    const std::uint64_t epoch = EpochOf(entry.when);
    if (batch_active_ && epoch <= cur_epoch_) {
      // Mid-drain insert into the epoch being dispatched: everything at or
      // before batch_pos_ has already fired with a smaller (when, seq), so
      // the ordered position is always in the unserved tail — and in the
      // common monotone case, exactly at the end.
      if (batch_pos_ >= batch_.size() || !FiresEarlier{}(entry, batch_.back())) {
        batch_.push_back(entry);
      } else {
        batch_.insert(std::lower_bound(batch_.begin() + static_cast<std::ptrdiff_t>(batch_pos_),
                                       batch_.end(), entry, FiresEarlier{}),
                      entry);
      }
      return;
    }
    if (epoch < cur_epoch_ + kBucketCount) {
      const std::uint32_t index =
          static_cast<std::uint32_t>((epoch <= cur_epoch_ ? cur_epoch_ : epoch)) & kRingMask;
      buckets_[index].push_back(entry);
      occupied_[index >> 6] |= std::uint64_t{1} << (index & 63);
      ++near_count_;
      MaybeCompact();
      return;
    }
    far_.push_back(entry);
    std::push_heap(far_.begin(), far_.end(), FiresLater{});
    // The compaction check rides the ring/overflow inserts only: dead batch
    // entries are self-limiting (their epoch's drain purges them within one
    // bucket width of virtual time), whereas dead ring/overflow entries can
    // linger for a full horizon — and keeping the check off the batch insert
    // keeps the hottest path to a push_back.
    MaybeCompact();
  }

  // Purge stale entries, slide the ring window, and pop the next live entry
  // into `out` if its time is <= `deadline`. The single home of the drain
  // logic shared by Step and RunUntil. One bucket epoch is loaded (sorted)
  // per batch; every same-epoch expiration then drains by index increment.
  //
  // Split for code size: only the serve loop — the branch taken on nearly
  // every pop in steady state — stays in the header for inlining into
  // Step/RunUntil. Epoch advance, bucket loading, far-tier migration and the
  // all-dead wholesale drop live out of line in PopNextLiveSlow, so the hot
  // path's register allocation never pays for them.
  bool PopNextLive(Cycles deadline, QueueEntry* out) {
    // Serve the active batch: dead entries (generation mismatch = cancelled)
    // drop out as they surface, even beyond the deadline.
    while (batch_pos_ < batch_.size()) {
      const QueueEntry& entry = batch_[batch_pos_];
      if (pool_->generation(entry.slot) != entry.generation) {
        ++batch_pos_;
        continue;
      }
      if (entry.when > deadline) {
        return false;
      }
      *out = entry;
      ++batch_pos_;
      return true;
    }
    return PopNextLiveSlow(deadline, out);
  }

  // The batch ran dry: advance to the next occupied epoch (or drop a fully
  // dead calendar wholesale), load its bucket, and serve from it. Defined in
  // engine.cc — see PopNextLive.
  bool PopNextLiveSlow(Cycles deadline, QueueEntry* out);

  // Pull every overflow entry whose epoch has entered the ring window into
  // its bucket. Dead entries are dropped here instead of migrating.
  void MigrateFar() {
    while (!far_.empty() && EpochOf(far_.front().when) < cur_epoch_ + kBucketCount) {
      const QueueEntry entry = far_.front();
      std::pop_heap(far_.begin(), far_.end(), FiresLater{});
      far_.pop_back();
      if (pool_->generation(entry.slot) != entry.generation) {
        continue;
      }
      const std::uint32_t index = static_cast<std::uint32_t>(EpochOf(entry.when)) & kRingMask;
      buckets_[index].push_back(entry);
      occupied_[index >> 6] |= std::uint64_t{1} << (index & 63);
      ++near_count_;
    }
  }

  // Distance (in epochs) from cur_epoch_ to the nearest occupied bucket,
  // scanning the bitmap circularly. Precondition: near_count_ > 0.
  std::uint32_t NextOccupiedDistance() const {
    const std::uint32_t start = static_cast<std::uint32_t>(cur_epoch_) & kRingMask;
    std::uint32_t word = start >> 6;
    std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start & 63));
    for (std::uint32_t scanned = 0;; ++scanned) {
      if (bits != 0) {
        const std::uint32_t index =
            (word << 6) + static_cast<std::uint32_t>(__builtin_ctzll(bits));
        return (index - start) & kRingMask;
      }
      word = (word + 1) & ((kBucketCount >> 6) - 1);
      bits = occupied_[word];
      // near_count_ > 0 guarantees a set bit within one full wrap.
      (void)scanned;
    }
  }

  // Fire a popped entry: advance time, free its pool slot, run the callback.
  void Fire(const QueueEntry& entry) {
    now_ = entry.when;
    ++events_processed_;
    // Move the callback out of the pool (freeing the slot for reuse) so
    // captured state dies with this scope even if a handle outlives the
    // event, and so the callback may itself schedule into the freed slot.
    InplaceCallback cb = pool_->Take(entry.slot);
    cb();
  }

  // Entries currently stored across all tiers (live + stale, excluding the
  // batch's already-served prefix).
  std::size_t StoredEntries() const {
    return near_count_ + far_.size() + (batch_.size() - batch_pos_);
  }

  // Sweep dead entries out of every tier once they outnumber live ones.
  // Every live event owns exactly one calendar entry, so the dead-entry
  // count is the stored excess over the pool's live count.
  void MaybeCompact() {
    const std::size_t stored = StoredEntries();
    if (stored >= kCompactMinEntries && stored - pool_->live() > stored / 2) {
      Compact();
    }
  }
  void Compact();

  // Empty every tier. Precondition: pool_->live() == 0, so each stored entry
  // is provably dead and no ordering or window state needs preserving.
  // Out-of-line (noinline) so the pop fast path stays compact, but NOT
  // __attribute__((cold)): the cancel-every-event pattern (timer churn,
  // BM_EngineCancelledEvent) reaches this on the hot path, and cold's
  // pessimized codegen/layout costs ~10%% there for no icache win.
  // Returns false so the caller can tail-call it without keeping any state
  // live across the call.
  __attribute__((noinline)) bool DropAllDead();

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t compactions_ = 0;
  bool stop_requested_ = false;
  EventPool* pool_;

  // --- Ladder state ---------------------------------------------------------
  // Epoch currently being drained (or next to drain). The ring window covers
  // epochs [cur_epoch_, cur_epoch_ + kBucketCount); the overflow tier holds
  // everything at or beyond the window's end.
  std::uint64_t cur_epoch_ = 0;
  std::size_t near_count_ = 0;  // entries across all ring buckets
  std::array<std::vector<QueueEntry>, kBucketCount> buckets_;
  std::array<std::uint64_t, kBucketCount / 64> occupied_;  // non-empty-bucket bitmap
  std::vector<QueueEntry> far_;  // overflow tier: binary heap under FiresLater
  // Drain batch for cur_epoch_: sorted ascending (when, seq); entries before
  // batch_pos_ have been dispatched or purged.
  std::vector<QueueEntry> batch_;
  std::size_t batch_pos_ = 0;
  bool batch_active_ = false;
};

}  // namespace wdmlat::sim

#endif  // SRC_SIM_ENGINE_H_
