// Discrete-event simulation engine.
//
// A single-threaded event calendar: callbacks are scheduled at absolute
// virtual times and executed in (time, insertion-order) order. Everything in
// wdmlat — hardware devices, the kernel, workloads, the measurement drivers —
// is driven from this calendar. There is no wall-clock anywhere; virtual
// hours of Windows activity run in wall-clock seconds.
//
// The hot path is allocation-free in steady state: event records live in a
// slab/free-list EventPool, callbacks are small-buffer-optimized
// InplaceCallbacks, and the calendar is a plain binary heap of POD entries.
// Cancelled events leave stale heap entries behind that are lazily purged on
// pop and bulk-compacted when they outnumber the live ones (see DESIGN.md
// §7 for the invariants).

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/sim/event_pool.h"
#include "src/sim/inplace_callback.h"
#include "src/sim/time.h"

namespace wdmlat::sim {

class Engine;

// Cancellable reference to a scheduled event: {pool, slot, generation}.
// Default-constructed handles are inert; cancelling an already-fired or
// already-cancelled event is a no-op, as is cancelling through a handle whose
// slot has been recycled for a newer event or whose engine has been
// destroyed (the handle's pool reference keeps the slot memory valid).
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(const EventHandle& other)
      : pool_(other.pool_), generation_(other.generation_), slot_(other.slot_) {
    if (pool_ != nullptr) {
      pool_->AddRef();
    }
  }
  EventHandle(EventHandle&& other) noexcept
      : pool_(other.pool_), generation_(other.generation_), slot_(other.slot_) {
    other.pool_ = nullptr;
  }
  EventHandle& operator=(const EventHandle& other) {
    EventHandle copy(other);
    swap(copy);
    return *this;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    swap(other);
    return *this;
  }
  ~EventHandle() {
    if (pool_ != nullptr) {
      pool_->Release();
    }
  }

  // True if the event is still pending (not fired, not cancelled).
  bool pending() const { return pool_ != nullptr && pool_->generation(slot_) == generation_; }

  // Prevent the event from firing. Safe to call in any state.
  void Cancel() {
    if (pool_ != nullptr) {
      pool_->CancelIfCurrent(slot_, generation_);
    }
  }

 private:
  friend class Engine;
  EventHandle(EventPool* pool, std::uint32_t slot, std::uint64_t generation)
      : pool_(pool), generation_(generation), slot_(slot) {
    pool_->AddRef();
  }
  void swap(EventHandle& other) noexcept {
    std::swap(pool_, other.pool_);
    std::swap(generation_, other.generation_);
    std::swap(slot_, other.slot_);
  }

  EventPool* pool_ = nullptr;
  std::uint64_t generation_ = 0;
  std::uint32_t slot_ = EventPool::kInvalidSlot;
};

class Engine {
 public:
  using Callback = InplaceCallback;

  Engine() : pool_(new EventPool) {}
  ~Engine() {
    pool_->Shutdown();
    pool_->Release();
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Current virtual time. Monotonically non-decreasing.
  Cycles now() const { return now_; }

  // Schedule `cb` at absolute time `when`. Times in the past are clamped to
  // now(). Events scheduled for the same instant fire in insertion order.
  // The callable is constructed directly into its pool slot, so for captures
  // within InplaceCallback::kInlineSize this performs no heap allocation.
  template <typename F>
  EventHandle ScheduleAt(Cycles when, F&& cb) {
    if (when < now_) {
      when = now_;
    }
    const std::uint32_t slot = pool_->Allocate(std::forward<F>(cb));
    const std::uint64_t generation = pool_->generation(slot);
    heap_.push_back(QueueEntry{when, next_seq_++, generation, slot});
    std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
    MaybeCompact();
    return EventHandle(pool_, slot, generation);
  }

  // Schedule `cb` `delay` cycles from now.
  template <typename F>
  EventHandle ScheduleAfter(Cycles delay, F&& cb) {
    return ScheduleAt(now_ + delay, std::forward<F>(cb));
  }

  // Execute the next pending event, if any. Returns false when the calendar
  // is empty.
  bool Step() {
    QueueEntry entry;
    if (!PopNextLive(kNoDeadline, &entry)) {
      return false;
    }
    Fire(entry);
    return true;
  }

  // Run events until the calendar is empty or a callback calls RequestStop().
  void RunUntilIdle();

  // Run all events with time <= `deadline` (or until RequestStop()), then
  // advance now() to `deadline`.
  void RunUntil(Cycles deadline);

  // Abort a RunUntil / RunUntilIdle loop from inside a callback.
  void RequestStop() { stop_requested_ = true; }

  std::uint64_t events_processed() const { return events_processed_; }

  // Number of scheduled-and-not-yet-fired events, excluding cancelled ones
  // (their heap entries linger in the calendar until lazily purged on pop or
  // bulk-compacted, but they no longer count). Tests can therefore assert on
  // calendar size.
  std::size_t events_pending() const { return pool_->live(); }

  // Observability: stale (cancelled) entries still occupying the calendar,
  // and how many times the calendar has been compacted.
  std::size_t stale_entries() const {
    return heap_.size() > pool_->live() ? heap_.size() - pool_->live() : 0;
  }
  std::uint64_t compactions() const { return compactions_; }

  // Invariant audit for sim::InvariantAuditor: validates the binary-heap
  // ordering of the calendar under FiresLater, that no live entry is
  // scheduled in the past, that every live pool slot owns exactly one heap
  // entry, that sequence numbers were issued before next_seq_, and the
  // pool's slab/free-list/generation consistency. Appends one line per
  // violation; appends nothing when the calendar is healthy.
  void AuditCalendar(std::vector<std::string>* violations) const;

 private:
  // POD calendar entry: no refcounts, no indirection on sift. `generation`
  // pins the entry to one pool-slot incarnation; a mismatch means the event
  // was cancelled (or fired through an earlier entry) and the entry is dead.
  struct QueueEntry {
    Cycles when;
    std::uint64_t seq;
    std::uint64_t generation;
    std::uint32_t slot;
  };
  // std::push_heap/pop_heap comparator: the front of the heap is the entry
  // that fires first, so "less" means "fires later".
  struct FiresLater {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  static constexpr Cycles kNoDeadline = std::numeric_limits<Cycles>::max();
  // Below this calendar size, compaction is never worth the make_heap; the
  // lazy purge on pop handles small backlogs for free.
  static constexpr std::size_t kCompactMinEntries = 64;

  // Purge stale entries off the top of the heap, then pop the next live
  // entry into `out` if its time is <= `deadline`. The single home of the
  // lazy-purge logic shared by Step and RunUntil.
  bool PopNextLive(Cycles deadline, QueueEntry* out) {
    MaybeCompact();
    // Lazy purge: dead entries (generation mismatch = cancelled) drop out as
    // they surface, even when they lie beyond the deadline.
    while (!heap_.empty() && pool_->generation(heap_.front().slot) != heap_.front().generation) {
      std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
      heap_.pop_back();
    }
    if (heap_.empty() || heap_.front().when > deadline) {
      return false;
    }
    *out = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
    heap_.pop_back();
    return true;
  }

  // Fire a popped entry: advance time, free its pool slot, run the callback.
  void Fire(const QueueEntry& entry) {
    now_ = entry.when;
    ++events_processed_;
    // Move the callback out of the pool (freeing the slot for reuse) so
    // captured state dies with this scope even if a handle outlives the
    // event, and so the callback may itself schedule into the freed slot.
    InplaceCallback cb = pool_->Take(entry.slot);
    cb();
  }

  // Rebuild the heap without dead entries once they outnumber live ones.
  // Every live event owns exactly one heap entry, so the dead-entry count is
  // the size excess over the pool's live count.
  void MaybeCompact() {
    if (heap_.size() >= kCompactMinEntries && heap_.size() - pool_->live() > heap_.size() / 2) {
      Compact();
    }
  }
  void Compact();

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t compactions_ = 0;
  bool stop_requested_ = false;
  EventPool* pool_;
  std::vector<QueueEntry> heap_;
};

}  // namespace wdmlat::sim

#endif  // SRC_SIM_ENGINE_H_
