// Discrete-event simulation engine.
//
// A single-threaded event calendar: callbacks are scheduled at absolute
// virtual times and executed in (time, insertion-order) order. Everything in
// wdmlat — hardware devices, the kernel, workloads, the measurement drivers —
// is driven from this calendar. There is no wall-clock anywhere; virtual
// hours of Windows activity run in wall-clock seconds.

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace wdmlat::sim {

class Engine;

// Cancellable reference to a scheduled event. Default-constructed handles are
// inert; cancelling an already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event is still pending (not fired, not cancelled).
  bool pending() const;

  // Prevent the event from firing. Safe to call in any state.
  void Cancel();

 private:
  friend class Engine;
  struct Record {
    std::function<void()> callback;
    bool cancelled = false;
    bool fired = false;
    // Shared live-event counter of the owning engine; decremented exactly
    // once, on fire or on first cancel. Shared ownership keeps Cancel() safe
    // even on a handle that outlives its engine.
    std::shared_ptr<std::size_t> live_counter;
  };
  explicit EventHandle(std::shared_ptr<Record> rec) : rec_(std::move(rec)) {}
  std::shared_ptr<Record> rec_;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Current virtual time. Monotonically non-decreasing.
  Cycles now() const { return now_; }

  // Schedule `cb` at absolute time `when`. Times in the past are clamped to
  // now(). Events scheduled for the same instant fire in insertion order.
  EventHandle ScheduleAt(Cycles when, Callback cb);

  // Schedule `cb` `delay` cycles from now.
  EventHandle ScheduleAfter(Cycles delay, Callback cb);

  // Execute the next pending event, if any. Returns false when the calendar
  // is empty.
  bool Step();

  // Run events until the calendar is empty or a callback calls RequestStop().
  void RunUntilIdle();

  // Run all events with time <= `deadline` (or until RequestStop()), then
  // advance now() to `deadline`.
  void RunUntil(Cycles deadline);

  // Abort a RunUntil / RunUntilIdle loop from inside a callback.
  void RequestStop() { stop_requested_ = true; }

  std::uint64_t events_processed() const { return events_processed_; }

  // Number of scheduled-and-not-yet-fired events, excluding cancelled ones
  // (their records linger in the calendar until lazily purged on pop, but
  // they no longer count). Tests can therefore assert on calendar size.
  std::size_t events_pending() const { return *live_; }

 private:
  struct QueueEntry {
    Cycles when;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::Record> rec;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  std::shared_ptr<std::size_t> live_ = std::make_shared<std::size_t>(0);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
};

}  // namespace wdmlat::sim

#endif  // SRC_SIM_ENGINE_H_
