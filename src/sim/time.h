// Virtual time for the wdmlat simulator.
//
// The paper instruments Windows with the Pentium II time-stamp counter on a
// 300 MHz machine, so the natural unit of simulated time is one CPU cycle at
// 300 MHz. All latencies reported by the library are differences of virtual
// TSC reads, exactly like the paper's GetCycleCount() arithmetic.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace wdmlat::sim {

// Absolute virtual time (or a duration) in CPU cycles.
using Cycles = std::uint64_t;

// The paper's testbed: 300 MHz Pentium II (Table 2).
inline constexpr std::uint64_t kCpuHz = 300'000'000;

inline constexpr Cycles kCyclesPerUs = kCpuHz / 1'000'000;  // 300
inline constexpr Cycles kCyclesPerMs = kCpuHz / 1'000;      // 300'000
inline constexpr Cycles kCyclesPerSec = kCpuHz;

constexpr Cycles UsToCycles(double us) {
  return static_cast<Cycles>(us * static_cast<double>(kCyclesPerUs) + 0.5);
}

constexpr Cycles MsToCycles(double ms) {
  return static_cast<Cycles>(ms * static_cast<double>(kCyclesPerMs) + 0.5);
}

constexpr Cycles SecToCycles(double sec) {
  return static_cast<Cycles>(sec * static_cast<double>(kCyclesPerSec) + 0.5);
}

constexpr double CyclesToUs(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerUs);
}

constexpr double CyclesToMs(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerMs);
}

constexpr double CyclesToSec(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerSec);
}

}  // namespace wdmlat::sim

#endif  // SRC_SIM_TIME_H_
