// sim::InvariantAuditor — periodic + on-failure self-check of simulator
// state.
//
// A corrupted calendar or pool does not necessarily crash: it silently skews
// the latency distributions the whole experiment exists to measure. The
// auditor makes corruption loud instead. It owns the built-in engine checks
// (ladder calendar consistency — bucket-ring occupancy bitmap, far-tier
// horizon, drain-batch sort and served-prefix discipline — plus pool
// generation/refcount/free-list consistency and time monotonicity across
// audits) and accepts named external checks from the
// layers the sim library cannot see (the kernel dispatcher's IRQL/lock
// discipline, the lab layer's histogram count conservation). The lab run
// loop audits between simulation slices and once more after the run; a
// non-empty report degrades the cell to `failed` (runtime::FailureKind::
// kInvariantViolation) so the merged matrix result never absorbs data from
// a sick simulator.
//
// Audits are read-only and scheduled in host space, never via the calendar,
// so an armed auditor cannot perturb the simulation: a supervised run with
// auditing on is bit-identical to one with auditing off.

#ifndef SRC_SIM_INVARIANT_AUDITOR_H_
#define SRC_SIM_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace wdmlat::sim {

// The outcome of one audit pass. Empty violations == healthy.
struct AuditReport {
  Cycles at = 0;
  std::uint64_t pass = 0;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  // Multi-line rendering: "audit pass N at cycle T: K violation(s)" followed
  // by one indented line per violation.
  std::string Render() const;
};

class InvariantAuditor {
 public:
  // An external check appends violation lines; it must not mutate any
  // simulator state.
  using Check = std::function<void(std::vector<std::string>*)>;

  explicit InvariantAuditor(Engine& engine) : engine_(&engine) {}

  // Register a named check run on every audit pass. The name prefixes any
  // line the check emits, so a violation is attributable without the check
  // repeating itself.
  void AddCheck(std::string name, Check check) {
    checks_.emplace_back(std::move(name), std::move(check));
  }

  // Run one full pass: engine calendar + pool consistency, time
  // monotonicity versus the previous pass, then every registered check.
  AuditReport Audit();

  std::uint64_t passes() const { return passes_; }
  std::uint64_t violations_seen() const { return violations_seen_; }

 private:
  Engine* engine_;
  std::vector<std::pair<std::string, Check>> checks_;
  Cycles last_now_ = 0;
  bool have_last_now_ = false;
  std::uint64_t passes_ = 0;
  std::uint64_t violations_seen_ = 0;
};

}  // namespace wdmlat::sim

#endif  // SRC_SIM_INVARIANT_AUDITOR_H_
