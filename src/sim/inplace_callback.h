// Small-buffer-optimized move-only callback for the event calendar.
//
// The engine's hot path schedules and fires hundreds of millions of events
// per wall-clock minute; a std::function per event means a heap allocation
// for any capture larger than the (implementation-defined, typically 16-byte)
// small-object buffer plus virtual dispatch through a copyable wrapper we
// never copy. InplaceCallback stores up to kInlineSize bytes of capture
// in-line (enough for every dispatcher lambda — see the static_asserts at the
// call sites in src/kernel/dispatcher.cc) and falls back to the heap only for
// oversized captures, so steady-state scheduling performs zero allocations.

#ifndef SRC_SIM_INPLACE_CALLBACK_H_
#define SRC_SIM_INPLACE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace wdmlat::sim {

class InplaceCallback {
 public:
  // Sized for the engine's clients: dispatcher completions capture
  // {this, frame*}, device models a handful of pointers/integers, and a
  // whole std::function (32 bytes on libstdc++) still fits, so forwarding
  // an existing std::function stays inline too.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  template <typename F>
  static constexpr bool kFitsInline = sizeof(std::decay_t<F>) <= kInlineSize &&
                                      alignof(std::decay_t<F>) <= kInlineAlign &&
                                      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InplaceCallback() = default;
  InplaceCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    Construct(std::forward<F>(f));
  }

  // Destroy the current callable (if any) and construct `f` in place —
  // the zero-relocation path the engine uses to build a callback directly
  // inside its pool slot.
  template <typename F>
  void emplace(F&& f) {
    reset();
    if constexpr (std::is_same_v<std::decay_t<F>, InplaceCallback>) {
      MoveFrom(f);
    } else {
      Construct(std::forward<F>(f));
    }
  }

  InplaceCallback(InplaceCallback&& other) noexcept { MoveFrom(other); }
  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }
  InplaceCallback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;
  ~InplaceCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  // Destroy the held callable (releasing captured state) without invoking it.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // Precondition: non-empty. The callable stays held (and may be invoked
  // again); callers that need captured state released move the callback out
  // first or reset() afterwards.
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct `dst` from `src`, then destroy `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); }
    static void Relocate(void* dst, void* src) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Ptr(void* storage) { return *reinterpret_cast<Fn**>(storage); }
    static void Invoke(void* storage) { (*Ptr(storage))(); }
    static void Relocate(void* dst, void* src) {
      *reinterpret_cast<Fn**>(dst) = Ptr(src);  // pointer steal; src is dropped
    }
    static void Destroy(void* storage) { delete Ptr(storage); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename F>
  void Construct(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  void MoveFrom(InplaceCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace wdmlat::sim

#endif  // SRC_SIM_INPLACE_CALLBACK_H_
