// Poisson event process: fires an action at exponentially distributed
// intervals. Workloads and the kernel's background self-noise are built from
// these (bursts of disk traffic, legacy masked sections, UI events, ...).

#ifndef SRC_SIM_POISSON_H_
#define SRC_SIM_POISSON_H_

#include <functional>
#include <utility>

#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace wdmlat::sim {

class PoissonProcess {
 public:
  // `rate_per_s` events per simulated second on average. A rate of zero
  // produces a process that never fires.
  PoissonProcess(Engine& engine, Rng rng, double rate_per_s, std::function<void()> action)
      : engine_(engine), rng_(rng), rate_per_s_(rate_per_s), action_(std::move(action)) {}

  ~PoissonProcess() { Stop(); }

  PoissonProcess(const PoissonProcess&) = delete;
  PoissonProcess& operator=(const PoissonProcess&) = delete;

  void Start() {
    if (running_ || rate_per_s_ <= 0.0) {
      return;
    }
    running_ = true;
    ScheduleNext();
  }

  void Stop() {
    running_ = false;
    next_.Cancel();
  }

  bool running() const { return running_; }
  double rate_per_s() const { return rate_per_s_; }

 private:
  void ScheduleNext() {
    const double gap_s = rng_.Exponential(1.0 / rate_per_s_);
    next_ = engine_.ScheduleAfter(SecToCycles(gap_s), [this] {
      if (!running_) {
        return;
      }
      action_();
      ScheduleNext();
    });
  }

  Engine& engine_;
  Rng rng_;
  double rate_per_s_;
  std::function<void()> action_;
  bool running_ = false;
  EventHandle next_;
};

}  // namespace wdmlat::sim

#endif  // SRC_SIM_POISSON_H_
