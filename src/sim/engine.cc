#include "src/sim/engine.h"

#include <utility>

namespace wdmlat::sim {

bool EventHandle::pending() const { return rec_ && !rec_->cancelled && !rec_->fired; }

void EventHandle::Cancel() {
  if (rec_ && !rec_->fired && !rec_->cancelled) {
    rec_->cancelled = true;
    rec_->callback = nullptr;  // release captured state eagerly
    if (rec_->live_counter) {
      --*rec_->live_counter;
    }
  }
}

EventHandle Engine::ScheduleAt(Cycles when, Callback cb) {
  if (when < now_) {
    when = now_;
  }
  auto rec = std::make_shared<EventHandle::Record>();
  rec->callback = std::move(cb);
  rec->live_counter = live_;
  ++*live_;
  queue_.push(QueueEntry{when, next_seq_++, rec});
  return EventHandle(std::move(rec));
}

EventHandle Engine::ScheduleAfter(Cycles delay, Callback cb) {
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool Engine::Step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    if (entry.rec->cancelled) {
      continue;  // lazy purge: cancelled records drop out as they surface
    }
    now_ = entry.when;
    entry.rec->fired = true;
    --*live_;
    ++events_processed_;
    // Move the callback out so captured state dies with this scope even if
    // the handle outlives the event.
    auto cb = std::move(entry.rec->callback);
    entry.rec->callback = nullptr;
    cb();
    return true;
  }
  return false;
}

void Engine::RunUntilIdle() {
  stop_requested_ = false;
  while (!stop_requested_ && Step()) {
  }
}

void Engine::RunUntil(Cycles deadline) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty()) {
    // Skip cancelled entries without advancing time.
    if (queue_.top().rec->cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) {
      break;
    }
    Step();
  }
  if (!stop_requested_ && now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace wdmlat::sim
