#include "src/sim/engine.h"

#include <algorithm>

namespace wdmlat::sim {

void Engine::RunUntilIdle() {
  stop_requested_ = false;
  while (!stop_requested_ && Step()) {
  }
}

void Engine::RunUntil(Cycles deadline) {
  stop_requested_ = false;
  QueueEntry entry;
  while (!stop_requested_ && PopNextLive(deadline, &entry)) {
    Fire(entry);
  }
  if (!stop_requested_ && now_ < deadline) {
    now_ = deadline;
  }
}

void Engine::Compact() {
  // DispatcherTest-style workloads cancel constantly; without compaction the
  // dead entries would be dragged through every sift until their (possibly
  // far-future) due time surfaces.
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const QueueEntry& e) {
                               return pool_->generation(e.slot) != e.generation;
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), FiresLater{});
  ++compactions_;
}

}  // namespace wdmlat::sim
