#include "src/sim/engine.h"

#include <algorithm>

namespace wdmlat::sim {

void Engine::RunUntilIdle() {
  stop_requested_ = false;
  while (!stop_requested_ && Step()) {
  }
}

void Engine::RunUntil(Cycles deadline) {
  stop_requested_ = false;
  QueueEntry entry;
  while (!stop_requested_ && PopNextLive(deadline, &entry)) {
    Fire(entry);
  }
  if (!stop_requested_ && now_ < deadline) {
    now_ = deadline;
  }
}

void Engine::AuditCalendar(std::vector<std::string>* violations) const {
  // Binary-heap ordering: every entry fires no earlier than its parent.
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    const QueueEntry& parent = heap_[(i - 1) / 2];
    const QueueEntry& child = heap_[i];
    if (FiresLater{}(parent, child)) {
      violations->push_back("engine: heap order violated at entry " + std::to_string(i) +
                            " (parent when=" + std::to_string(parent.when) +
                            " seq=" + std::to_string(parent.seq) +
                            " fires after child when=" + std::to_string(child.when) +
                            " seq=" + std::to_string(child.seq) + ")");
      break;
    }
  }
  std::size_t live_entries = 0;
  for (const QueueEntry& entry : heap_) {
    if (pool_->generation(entry.slot) != entry.generation) {
      continue;  // stale entry for a cancelled event: legal until purged
    }
    ++live_entries;
    if (entry.when < now_) {
      violations->push_back("engine: live event in slot " + std::to_string(entry.slot) +
                            " scheduled at " + std::to_string(entry.when) +
                            " which is before now=" + std::to_string(now_));
    }
    if (entry.seq >= next_seq_) {
      violations->push_back("engine: entry seq " + std::to_string(entry.seq) +
                            " was never issued (next_seq=" + std::to_string(next_seq_) +
                            ")");
    }
  }
  // Every live pool slot owns exactly one heap entry, so the live-entry
  // count must match the pool's live count exactly.
  if (live_entries != pool_->live()) {
    violations->push_back("engine: calendar holds " + std::to_string(live_entries) +
                          " live entries but the pool reports " +
                          std::to_string(pool_->live()) + " live events");
  }
  pool_->AuditConsistency(violations);
}

void Engine::Compact() {
  // DispatcherTest-style workloads cancel constantly; without compaction the
  // dead entries would be dragged through every sift until their (possibly
  // far-future) due time surfaces.
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const QueueEntry& e) {
                               return pool_->generation(e.slot) != e.generation;
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), FiresLater{});
  ++compactions_;
}

}  // namespace wdmlat::sim
