#include "src/sim/engine.h"

#include <algorithm>

namespace wdmlat::sim {

void Engine::RunUntilIdle() {
  stop_requested_ = false;
  while (!stop_requested_ && Step()) {
  }
}

void Engine::RunUntil(Cycles deadline) {
  stop_requested_ = false;
  QueueEntry entry;
  while (!stop_requested_ && PopNextLive(deadline, &entry)) {
    Fire(entry);
  }
  if (!stop_requested_ && now_ < deadline) {
    now_ = deadline;
  }
  // On a fully empty calendar the drain cursor had nothing to chase, so it
  // can lag arbitrarily far behind now(). Snap it forward so the next
  // schedule near now() lands in the ring instead of the overflow tier.
  if (!batch_active_ && near_count_ == 0 && far_.empty() && cur_epoch_ < EpochOf(now_)) {
    cur_epoch_ = EpochOf(now_);
  }
}

void Engine::Reset() {
  // Drop every stored entry but keep each container's grown capacity: the
  // next cell's traffic replays into already-sized buckets and slabs, which
  // is the whole point of warm reuse.
  for (std::uint32_t word = 0; word < kBucketCount / 64; ++word) {
    std::uint64_t bits = occupied_[word];
    while (bits != 0) {
      const std::uint32_t index =
          (word << 6) + static_cast<std::uint32_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      buckets_[index].clear();
    }
    occupied_[word] = 0;
  }
  near_count_ = 0;
  far_.clear();
  batch_.clear();
  batch_pos_ = 0;
  batch_active_ = false;
  pool_->ResetAll();
  now_ = 0;
  next_seq_ = 0;
  events_processed_ = 0;
  compactions_ = 0;
  stop_requested_ = false;
  cur_epoch_ = 0;
}

void Engine::AuditCalendar(std::vector<std::string>* violations) const {
  const auto is_dead = [this](const QueueEntry& entry) {
    return pool_->generation(entry.slot) != entry.generation;
  };
  // Shared per-entry checks: live entries must not sit in the past and must
  // carry an issued sequence number.
  std::size_t live_entries = 0;
  const auto check_entry = [&](const QueueEntry& entry, const char* tier) {
    if (is_dead(entry)) {
      return;  // stale entry for a cancelled event: legal until purged
    }
    ++live_entries;
    if (entry.when < now_) {
      violations->push_back("engine: live " + std::string(tier) + " event in slot " +
                            std::to_string(entry.slot) + " scheduled at " +
                            std::to_string(entry.when) +
                            " which is before now=" + std::to_string(now_));
    }
    if (entry.seq >= next_seq_) {
      violations->push_back("engine: " + std::string(tier) + " entry seq " +
                            std::to_string(entry.seq) +
                            " was never issued (next_seq=" + std::to_string(next_seq_) + ")");
    }
  };

  // --- Ring tier: bucket-index/epoch consistency and the occupancy bitmap.
  std::size_t ring_entries = 0;
  for (std::uint32_t index = 0; index < kBucketCount; ++index) {
    const std::vector<QueueEntry>& bucket = buckets_[index];
    const bool bit = (occupied_[index >> 6] >> (index & 63)) & 1;
    if (bit != !bucket.empty()) {
      violations->push_back("engine: occupancy bit for bucket " + std::to_string(index) +
                            (bit ? " set but the bucket is empty"
                                 : " clear but the bucket holds entries"));
    }
    ring_entries += bucket.size();
    for (const QueueEntry& entry : bucket) {
      const std::uint64_t epoch = EpochOf(entry.when);
      if (epoch >= cur_epoch_) {
        if (epoch - cur_epoch_ >= kBucketCount) {
          violations->push_back("engine: bucket " + std::to_string(index) + " entry at epoch " +
                                std::to_string(epoch) + " lies beyond the ring window [" +
                                std::to_string(cur_epoch_) + ", +" +
                                std::to_string(kBucketCount) + ")");
        } else if ((static_cast<std::uint32_t>(epoch) & kRingMask) != index) {
          violations->push_back("engine: entry at epoch " + std::to_string(epoch) +
                                " filed in bucket " + std::to_string(index) +
                                " instead of bucket " +
                                std::to_string(static_cast<std::uint32_t>(epoch) & kRingMask));
        }
      } else if (index != (static_cast<std::uint32_t>(cur_epoch_) & kRingMask)) {
        // Below-window entries may only ride the current epoch's bucket.
        violations->push_back("engine: below-window entry (epoch " + std::to_string(epoch) +
                              " < cur_epoch " + std::to_string(cur_epoch_) + ") in bucket " +
                              std::to_string(index) + " instead of the current bucket");
      }
      check_entry(entry, "ring");
    }
  }
  if (ring_entries != near_count_) {
    violations->push_back("engine: ring buckets hold " + std::to_string(ring_entries) +
                          " entries but near_count says " + std::to_string(near_count_));
  }

  // --- Overflow tier: heap order, and nothing inside the ring window.
  for (std::size_t i = 1; i < far_.size(); ++i) {
    const QueueEntry& parent = far_[(i - 1) / 2];
    const QueueEntry& child = far_[i];
    if (FiresLater{}(parent, child)) {
      violations->push_back("engine: overflow heap order violated at entry " + std::to_string(i) +
                            " (parent when=" + std::to_string(parent.when) +
                            " seq=" + std::to_string(parent.seq) +
                            " fires after child when=" + std::to_string(child.when) +
                            " seq=" + std::to_string(child.seq) + ")");
      break;
    }
  }
  for (const QueueEntry& entry : far_) {
    if (EpochOf(entry.when) < cur_epoch_ + kBucketCount) {
      violations->push_back("engine: overflow entry at epoch " +
                            std::to_string(EpochOf(entry.when)) +
                            " is inside the ring window starting at epoch " +
                            std::to_string(cur_epoch_) + " and should have migrated");
    }
    check_entry(entry, "overflow");
  }

  // --- Drain batch: inactive means empty; the unserved tail is sorted in
  // fire order; the served prefix holds only dead (fired or cancelled)
  // entries; nothing in the batch is beyond the current epoch.
  if (!batch_active_ && (!batch_.empty() || batch_pos_ != 0)) {
    violations->push_back("engine: drain batch holds " + std::to_string(batch_.size()) +
                          " entries (pos " + std::to_string(batch_pos_) +
                          ") while no batch is active");
  }
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    const QueueEntry& entry = batch_[i];
    if (EpochOf(entry.when) > cur_epoch_) {
      violations->push_back("engine: batch entry at epoch " + std::to_string(EpochOf(entry.when)) +
                            " is beyond the epoch being drained (" + std::to_string(cur_epoch_) +
                            ")");
    }
    if (i < batch_pos_) {
      if (!is_dead(entry)) {
        violations->push_back("engine: served batch entry " + std::to_string(i) +
                              " (slot " + std::to_string(entry.slot) +
                              ") is still live — double dispatch hazard");
      }
      continue;
    }
    if (i > batch_pos_ && !FiresEarlier{}(batch_[i - 1], entry)) {
      violations->push_back("engine: batch tail out of fire order at entry " + std::to_string(i) +
                            " (when=" + std::to_string(entry.when) +
                            " seq=" + std::to_string(entry.seq) + " after when=" +
                            std::to_string(batch_[i - 1].when) +
                            " seq=" + std::to_string(batch_[i - 1].seq) + ")");
    }
    check_entry(entry, "batch");
  }

  // Every live pool slot owns exactly one calendar entry across the three
  // tiers, so the live-entry count must match the pool's live count exactly.
  if (live_entries != pool_->live()) {
    violations->push_back("engine: calendar holds " + std::to_string(live_entries) +
                          " live entries but the pool reports " +
                          std::to_string(pool_->live()) + " live events");
  }
  pool_->AuditConsistency(violations);
}

void Engine::Compact() {
  // DispatcherTest-style workloads cancel constantly; without compaction the
  // dead entries would sit in (possibly far-future) buckets until the drain
  // cursor finally reaches their epoch.
  const auto is_dead = [this](const QueueEntry& entry) {
    return pool_->generation(entry.slot) != entry.generation;
  };
  near_count_ = 0;
  for (std::uint32_t index = 0; index < kBucketCount; ++index) {
    std::vector<QueueEntry>& bucket = buckets_[index];
    if (bucket.empty()) {
      continue;
    }
    // remove_if keeps relative order, so the per-bucket sort at drain time
    // sees the same (when, seq) multiset it would have anyway.
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(), is_dead), bucket.end());
    if (bucket.empty()) {
      occupied_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
    }
    near_count_ += bucket.size();
  }
  far_.erase(std::remove_if(far_.begin(), far_.end(), is_dead), far_.end());
  std::make_heap(far_.begin(), far_.end(), FiresLater{});
  // Only the unserved tail may be touched: entries before batch_pos_ are
  // already behind the drain cursor.
  if (batch_pos_ < batch_.size()) {
    batch_.erase(std::remove_if(batch_.begin() + static_cast<std::ptrdiff_t>(batch_pos_),
                                batch_.end(), is_dead),
                 batch_.end());
  }
  ++compactions_;
}

bool Engine::PopNextLiveSlow(Cycles deadline, QueueEntry* out) {
  for (;;) {
    // Serve the (re)loaded batch — same loop as the inline fast path.
    while (batch_pos_ < batch_.size()) {
      const QueueEntry& entry = batch_[batch_pos_];
      if (pool_->generation(entry.slot) != entry.generation) {
        ++batch_pos_;
        continue;
      }
      if (entry.when > deadline) {
        return false;
      }
      *out = entry;
      ++batch_pos_;
      return true;
    }
    // All-dead fast path: with zero live events every stored entry is a
    // cancelled leftover, so the calendar empties wholesale instead of the
    // scan below discovering each stale entry bucket by bucket (the
    // schedule/cancel idle pattern of one-shot timeout guards).
    if (pool_->live() == 0) {
      return DropAllDead();
    }
    if (batch_active_) {
      // The drained epoch's batch is exhausted. Deactivate it but leave
      // the cursor put: the scan below advances only to epochs that
      // actually hold entries (or to the deadline), so the cursor never
      // outruns virtual time just because a batch ran dry.
      batch_.clear();
      batch_pos_ = 0;
      batch_active_ = false;
    }
    // Locate the next epoch holding entries: nearest occupied ring bucket,
    // else the overflow tier's minimum (always beyond every ring epoch).
    std::uint64_t target;
    if (near_count_ > 0) {
      target = cur_epoch_ + NextOccupiedDistance();
    } else if (!far_.empty()) {
      target = EpochOf(far_.front().when);
    } else {
      return false;
    }
    if (target > cur_epoch_ && target > EpochOf(deadline)) {
      // The next event lies beyond the deadline. Slide the window up to
      // the deadline's epoch (now() will advance there), keeping the
      // far-tier migration invariant intact. The current epoch's bucket is
      // exempt from this epoch-granular check: it may hold below-window
      // entries that are due, so it always loads and the serve loop's
      // exact per-entry deadline test decides.
      if (EpochOf(deadline) > cur_epoch_) {
        cur_epoch_ = EpochOf(deadline);
        MigrateFar();
      }
      return false;
    }
    if (target > cur_epoch_) {
      cur_epoch_ = target;
      MigrateFar();
    }
    // Load the current epoch's bucket as the new drain batch. The bucket
    // can be empty when the far-tier minimum was stale or migrated into a
    // later window epoch; the next iteration advances past it.
    const std::uint32_t index = static_cast<std::uint32_t>(cur_epoch_) & kRingMask;
    std::vector<QueueEntry>& bucket = buckets_[index];
    if (!bucket.empty()) {
      near_count_ -= bucket.size();
      occupied_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
      // Copy rather than swap: both vectors keep their grown capacity, so
      // steady state re-uses the same two buffers instead of circulating
      // the batch's capacity through all 512 buckets.
      batch_.assign(bucket.begin(), bucket.end());
      bucket.clear();
      std::sort(batch_.begin(), batch_.end(), FiresEarlier{});
    }
    batch_pos_ = 0;
    batch_active_ = true;
  }
}

bool Engine::DropAllDead() {
  batch_.clear();
  batch_pos_ = 0;
  batch_active_ = false;
  far_.clear();
  if (near_count_ > 0) {
    for (std::uint32_t word = 0; word < kBucketCount / 64; ++word) {
      std::uint64_t bits = occupied_[word];
      while (bits != 0) {
        const std::uint32_t index =
            (word << 6) + static_cast<std::uint32_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        buckets_[index].clear();
      }
      occupied_[word] = 0;
    }
    near_count_ = 0;
  }
  return false;
}

}  // namespace wdmlat::sim
