// Slab-allocated, generation-tagged pool of event records.
//
// The engine owns one pool and addresses records by 32-bit slot index; freed
// slots are recycled through an intrusive free list, so steady-state
// scheduling never allocates. Every slot carries a 64-bit generation counter
// that increments on allocate *and* on release: a generation is odd exactly
// while that incarnation is scheduled, and an EventHandle's stored generation
// matches the slot's current one only for the incarnation it was issued for.
// Stale handles (fired, cancelled, or slot-reused) therefore read "not
// pending" and cancel as a no-op without any per-event heap record.
//
// Handles keep the pool alive through a non-atomic intrusive refcount (the
// engine and all its handles live on one thread by construction), which is
// what makes Cancel()/pending() safe even on a handle that outlives the
// engine: the engine's destructor Shutdown()s the pool — releasing captured
// state and bumping every live generation — and drops its reference, while
// the memory stays valid until the last handle lets go.

#ifndef SRC_SIM_EVENT_POOL_H_
#define SRC_SIM_EVENT_POOL_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/inplace_callback.h"

namespace wdmlat::sim {

class EventPool {
 public:
  static constexpr std::uint32_t kInvalidSlot = 0xFFFFFFFFu;
  // Slab granularity: 256 slots ≈ 16 KiB per slab, allocated on demand and
  // never released until the pool dies, so slot addresses are stable.
  static constexpr std::uint32_t kSlabBits = 8;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  void AddRef() { ++refs_; }
  void Release() {
    assert(refs_ > 0);
    if (--refs_ == 0) {
      delete this;
    }
  }

  // Claim a free slot for a newly scheduled event, constructing the callable
  // directly in the slot (no relocation). Returns the slot index; the slot's
  // generation (now odd) identifies this incarnation.
  template <typename F>
  std::uint32_t Allocate(F&& cb) {
    if (free_head_ == kInvalidSlot) {
      Grow();
    }
    const std::uint32_t index = free_head_;
    Slot& s = slot(index);
    free_head_ = s.next_free;
    ++s.generation;  // odd: scheduled
    s.callback.emplace(std::forward<F>(cb));
    ++live_;
    return index;
  }

  // Move the callback out and free the slot (the event is firing).
  InplaceCallback Take(std::uint32_t index) {
    Slot& s = slot(index);
    assert((s.generation & 1) != 0 && "taking a slot that is not scheduled");
    InplaceCallback cb = std::move(s.callback);
    ReleaseSlot(index, s);
    return cb;
  }

  // Cancel incarnation `generation` of `index` if it is still the current
  // one. Returns true when the event was live and is now cancelled; stale
  // generations (fired / already cancelled / slot reused / engine shut down)
  // are a no-op.
  bool CancelIfCurrent(std::uint32_t index, std::uint64_t generation) {
    Slot& s = slot(index);
    if (s.generation != generation) {
      return false;
    }
    s.callback.reset();  // release captured state eagerly
    ReleaseSlot(index, s);
    return true;
  }

  std::uint64_t generation(std::uint32_t index) const { return slot(index).generation; }

  // Scheduled-and-not-yet-fired events, excluding cancelled ones.
  std::size_t live() const { return live_; }

  // Total slots ever created (capacity high-water mark), for tests.
  std::size_t capacity() const { return slabs_.size() * kSlabSize; }

  // Self-check for the invariant auditor. Appends one line per violation:
  // the odd-generation (scheduled) slot count must equal live_, the free
  // list must be cycle-free, contain only even-generation slots, and account
  // for exactly capacity() - live() slots, and the pool must be referenced.
  void AuditConsistency(std::vector<std::string>* violations) const {
    std::size_t scheduled = 0;
    for (const auto& slab : slabs_) {
      for (std::uint32_t i = 0; i < kSlabSize; ++i) {
        if ((slab[i].generation & 1) != 0) {
          ++scheduled;
        }
      }
    }
    if (scheduled != live_) {
      violations->push_back("event_pool: " + std::to_string(scheduled) +
                            " slots carry a scheduled (odd) generation but live()=" +
                            std::to_string(live_));
    }
    const std::size_t cap = capacity();
    std::size_t free_len = 0;
    for (std::uint32_t cursor = free_head_; cursor != kInvalidSlot;
         cursor = slot(cursor).next_free) {
      if (cursor >= cap) {
        violations->push_back("event_pool: free list points at slot " +
                              std::to_string(cursor) + " beyond capacity " +
                              std::to_string(cap));
        break;
      }
      if ((slot(cursor).generation & 1) != 0) {
        violations->push_back("event_pool: free list contains scheduled slot " +
                              std::to_string(cursor));
        break;
      }
      if (++free_len > cap) {
        violations->push_back("event_pool: free list is cyclic (walked " +
                              std::to_string(free_len) + " links over capacity " +
                              std::to_string(cap) + ")");
        break;
      }
    }
    if (free_len <= cap && free_len + live_ != cap) {
      violations->push_back("event_pool: free(" + std::to_string(free_len) +
                            ") + live(" + std::to_string(live_) +
                            ") != capacity(" + std::to_string(cap) + ")");
    }
    if (refs_ == 0) {
      violations->push_back("event_pool: refcount is zero while in use");
    }
  }

  // Called by the engine's destructor: cancel every live incarnation so
  // captured state is released and outstanding handles read "not pending".
  void Shutdown() {
    for (auto& slab : slabs_) {
      for (std::uint32_t i = 0; i < kSlabSize; ++i) {
        Slot& s = slab[i];
        if ((s.generation & 1) != 0) {
          s.callback.reset();
          ++s.generation;
        }
      }
    }
    live_ = 0;
  }

  // Warm reuse (Engine::Reset): cancel every live incarnation like Shutdown,
  // then rethread the complete free list across the retained slabs so every
  // slot is allocatable again. Generations keep counting (never rewound), so
  // handles issued before the reset still read "not pending" afterwards.
  // Slot numbering and generation values never feed the simulation — fire
  // order is strictly (when, seq) — so a run on a reset pool is bit-identical
  // to one on a fresh pool.
  void ResetAll() {
    for (auto& slab : slabs_) {
      for (std::uint32_t i = 0; i < kSlabSize; ++i) {
        Slot& s = slab[i];
        if ((s.generation & 1) != 0) {
          s.callback.reset();
          ++s.generation;
        }
      }
    }
    live_ = 0;
    free_head_ = kInvalidSlot;
    // Thread slabs back-to-front so the free list walks slot 0 upward, the
    // same ascending order a freshly grown single slab starts with.
    for (std::size_t slab_index = slabs_.size(); slab_index-- > 0;) {
      const std::uint32_t base = static_cast<std::uint32_t>(slab_index) << kSlabBits;
      Slot* slab = slabs_[slab_index].get();
      for (std::uint32_t i = 0; i < kSlabSize - 1; ++i) {
        slab[i].next_free = base + i + 1;
      }
      slab[kSlabSize - 1].next_free = free_head_;
      free_head_ = base;
    }
  }

 private:
  struct Slot {
    InplaceCallback callback;
    std::uint64_t generation = 0;  // odd while scheduled, even while free
    std::uint32_t next_free = kInvalidSlot;
  };

  Slot& slot(std::uint32_t index) { return slabs_[index >> kSlabBits][index & (kSlabSize - 1)]; }
  const Slot& slot(std::uint32_t index) const {
    return slabs_[index >> kSlabBits][index & (kSlabSize - 1)];
  }

  void ReleaseSlot(std::uint32_t index, Slot& s) {
    ++s.generation;  // even: free
    s.next_free = free_head_;
    free_head_ = index;
    assert(live_ > 0);
    --live_;
  }

  void Grow() {
    const std::uint32_t base = static_cast<std::uint32_t>(slabs_.size()) << kSlabBits;
    assert(slabs_.size() < (1u << (32 - kSlabBits)) && "event pool exhausted");
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
    // Thread the new slab onto the free list in ascending index order.
    Slot* slab = slabs_.back().get();
    for (std::uint32_t i = 0; i < kSlabSize - 1; ++i) {
      slab[i].next_free = base + i + 1;
    }
    slab[kSlabSize - 1].next_free = free_head_;
    free_head_ = base;
  }

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::uint32_t free_head_ = kInvalidSlot;
  std::size_t live_ = 0;
  std::size_t refs_ = 1;  // the engine's reference
};

}  // namespace wdmlat::sim

#endif  // SRC_SIM_EVENT_POOL_H_
