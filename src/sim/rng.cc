#include "src/sim/rng.h"

#include <cassert>
#include <cmath>

namespace wdmlat::sim {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

std::uint64_t Rng::UniformInt(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) {  // full 64-bit range
    return NextU64();
  }
  return lo + NextU64() % span;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log1p(-u);
}

double Rng::Normal(double mean, double sigma) {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + sigma * r * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormalMedian(double median, double sigma) {
  assert(median > 0.0);
  return median * std::exp(Normal(0.0, sigma));
}

double Rng::BoundedPareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

Rng Rng::Fork() { return Rng(NextU64()); }

DurationDist DurationDist::Zero() { return DurationDist(); }

DurationDist DurationDist::Constant(double us) {
  DurationDist d;
  d.kind_ = Kind::kConstant;
  d.a_ = us;
  return d;
}

DurationDist DurationDist::Uniform(double lo_us, double hi_us) {
  assert(lo_us <= hi_us);
  DurationDist d;
  d.kind_ = Kind::kUniform;
  d.a_ = lo_us;
  d.b_ = hi_us;
  return d;
}

DurationDist DurationDist::Exponential(double mean_us) {
  DurationDist d;
  d.kind_ = Kind::kExponential;
  d.a_ = mean_us;
  return d;
}

DurationDist DurationDist::LogNormal(double median_us, double sigma) {
  DurationDist d;
  d.kind_ = Kind::kLogNormal;
  d.a_ = median_us;
  d.b_ = sigma;
  return d;
}

DurationDist DurationDist::BoundedPareto(double alpha, double lo_us, double hi_us) {
  DurationDist d;
  d.kind_ = Kind::kBoundedPareto;
  d.a_ = alpha;
  d.b_ = lo_us;
  d.c_ = hi_us;
  return d;
}

DurationDist DurationDist::Scaled(double factor) const {
  DurationDist d = *this;
  switch (kind_) {
    case Kind::kZero:
      break;
    case Kind::kConstant:
    case Kind::kExponential:
    case Kind::kLogNormal:
      d.a_ *= factor;  // value / mean / median; lognormal shape stays in b_
      break;
    case Kind::kUniform:
      d.a_ *= factor;
      d.b_ *= factor;
      break;
    case Kind::kBoundedPareto:
      d.b_ *= factor;  // lo/hi bounds; tail index stays in a_
      d.c_ *= factor;
      break;
  }
  return d;
}

double DurationDist::SampleUs(Rng& rng) const {
  switch (kind_) {
    case Kind::kZero:
      return 0.0;
    case Kind::kConstant:
      return a_;
    case Kind::kUniform:
      return rng.Uniform(a_, b_);
    case Kind::kExponential:
      return rng.Exponential(a_);
    case Kind::kLogNormal:
      return rng.LogNormalMedian(a_, b_);
    case Kind::kBoundedPareto:
      return rng.BoundedPareto(a_, b_, c_);
  }
  return 0.0;
}

Cycles DurationDist::Sample(Rng& rng) const { return UsToCycles(SampleUs(rng)); }

double DurationDist::MeanUs() const {
  switch (kind_) {
    case Kind::kZero:
      return 0.0;
    case Kind::kConstant:
      return a_;
    case Kind::kUniform:
      return 0.5 * (a_ + b_);
    case Kind::kExponential:
      return a_;
    case Kind::kLogNormal:
      // mean = median * exp(sigma^2/2)
      return a_ * std::exp(0.5 * b_ * b_);
    case Kind::kBoundedPareto: {
      const double alpha = a_, lo = b_, hi = c_;
      if (alpha == 1.0) {
        return (std::log(hi) - std::log(lo)) * lo * hi / (hi - lo);
      }
      const double la = std::pow(lo, alpha);
      const double ha = std::pow(hi, alpha);
      return la / (1.0 - la / ha) * (alpha / (alpha - 1.0)) *
             (1.0 / std::pow(lo, alpha - 1.0) - 1.0 / std::pow(hi, alpha - 1.0));
    }
  }
  return 0.0;
}

double DurationDist::UpperBoundUs() const {
  switch (kind_) {
    case Kind::kZero:
      return 0.0;
    case Kind::kConstant:
      return a_;
    case Kind::kUniform:
      return b_;
    case Kind::kExponential:
      return a_ * 23.0;  // ~1e-10 quantile
    case Kind::kLogNormal:
      return a_ * std::exp(6.4 * b_);  // ~1e-10 quantile
    case Kind::kBoundedPareto:
      return c_;
  }
  return 0.0;
}

}  // namespace wdmlat::sim
