#include "src/lab/fleet.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/kernel/profile.h"
#include "src/lab/report_io.h"
#include "src/obs/json.h"
#include "src/runtime/thread_pool.h"
#include "src/sim/rng.h"
#include "src/workload/stress_profile.h"

namespace wdmlat::lab {

namespace {

using report_json::Escape;
using report_json::ParseU64;
using report_json::ReadHexDoubleField;
using report_json::ReadHistogram;
using report_json::ReadSketch;
using report_json::ReadStringField;
using report_json::ReadU64Field;
using report_json::WriteHistogram;
using report_json::WriteSketch;

constexpr const char* kRecordFormat = "wdmlat-fleet-cell";
constexpr const char* kReportFormat = "wdmlat-fleet-report";
constexpr int kFormatVersion = 1;

// Domain-separation tags for the hash chains: the cell seed feeds the
// simulation, the draw seed feeds the per-member priors. Distinct tags keep
// the two streams independent even though both derive from the coordinates.
constexpr std::uint64_t kCellSeedTag = 0x666c656574636c6cull;   // "fleetcll"
constexpr std::uint64_t kDrawSeedTag = 0x666c656574647277ull;   // "fleetdrw"

std::string U64String(std::uint64_t value) { return std::to_string(value); }

bool OsProfileByName(std::string_view name, kernel::KernelProfile* out) {
  if (name == "nt4") {
    *out = kernel::MakeNt4Profile();
  } else if (name == "win98") {
    *out = kernel::MakeWin98Profile();
  } else if (name == "w2kbeta") {
    *out = kernel::MakeWin2000BetaProfile();
  } else if (name == "nt_smp2") {
    *out = kernel::MakeNt4SmpProfile(2, /*migrating_dpcs=*/false);
  } else if (name == "nt_smp4") {
    *out = kernel::MakeNt4SmpProfile(4, /*migrating_dpcs=*/false);
  } else if (name == "nt_smp2_migrate") {
    *out = kernel::MakeNt4SmpProfile(2, /*migrating_dpcs=*/true);
  } else if (name == "nt_smp4_migrate") {
    *out = kernel::MakeNt4SmpProfile(4, /*migrating_dpcs=*/true);
  } else {
    return false;
  }
  return true;
}

bool WorkloadByName(std::string_view name, workload::StressProfile* out) {
  if (name == "office") {
    *out = workload::OfficeStress();
  } else if (name == "workstation") {
    *out = workload::WorkstationStress();
  } else if (name == "games") {
    *out = workload::GamesStress();
  } else if (name == "web") {
    *out = workload::WebStress();
  } else if (name == "idle") {
    *out = workload::IdleStress();
  } else {
    return false;
  }
  return true;
}

// Hardware-speed model: the simulated cycle rate is a compile-time constant
// (sim::kCpuHz = 300 MHz), so a member's sampled clock scales the kernel
// profile's *cost* distributions instead — a 150 MHz machine pays 2x the
// microseconds for every dispatch, switch, masked section and file op. Event
// *rates* (clock Hz, self-noise rates, quantum) stay wall-anchored.
void ScaleProfileForSpeed(kernel::KernelProfile* os, double speed_mhz) {
  const double factor = 300.0 / speed_mhz;
  os->isr_dispatch_overhead = os->isr_dispatch_overhead.Scaled(factor);
  os->context_switch_cost = os->context_switch_cost.Scaled(factor);
  os->dpc_dispatch_cost = os->dpc_dispatch_cost.Scaled(factor);
  os->clock_isr_body = os->clock_isr_body.Scaled(factor);
  os->file_op_kernel_us = os->file_op_kernel_us.Scaled(factor);
  os->masked_section_len = os->masked_section_len.Scaled(factor);
  os->dispatch_section_len = os->dispatch_section_len.Scaled(factor);
  os->lockout_len = os->lockout_len.Scaled(factor);
  os->clock_isr_per_timer_us *= factor;
}

std::string ValidateCohort(const FleetCohort& cohort, std::size_t index) {
  const std::string where = "cohort " + std::to_string(index) +
                            (cohort.name.empty() ? "" : " (" + cohort.name + ")") + ": ";
  kernel::KernelProfile os;
  if (!OsProfileByName(cohort.os, &os)) {
    return where + "unknown os \"" + cohort.os +
           "\" (nt4|win98|w2kbeta|nt_smp2|nt_smp4|nt_smp2_migrate|nt_smp4_migrate)";
  }
  if (cohort.workloads.empty()) {
    return where + "needs at least one workload";
  }
  workload::StressProfile wl;
  for (const std::string& name : cohort.workloads) {
    if (!WorkloadByName(name, &wl)) {
      return where + "unknown workload \"" + name +
             "\" (office|workstation|games|web|idle)";
    }
  }
  if (!cohort.workload_weights.empty()) {
    if (cohort.workload_weights.size() != cohort.workloads.size()) {
      return where + "workload_weights length != workloads length";
    }
    for (const double w : cohort.workload_weights) {
      if (!(w > 0.0) || !std::isfinite(w)) {
        return where + "workload weights must be finite and > 0";
      }
    }
  }
  if (cohort.count == 0) {
    return where + "count must be >= 1";
  }
  if (!(cohort.speed_mhz_lo > 0.0) || !(cohort.speed_mhz_hi >= cohort.speed_mhz_lo)) {
    return where + "speed_mhz range must satisfy 0 < lo <= hi";
  }
  if (!(cohort.stress_minutes > 0.0) || cohort.warmup_seconds < 0.0) {
    return where + "durations must be positive";
  }
  if (!(cohort.pit_hz > 0.0) || !std::isfinite(cohort.pit_hz)) {
    return where + "pit_hz must be finite and > 0";
  }
  if (cohort.fault_prob < 0.0 || cohort.fault_prob > 1.0) {
    return where + "fault_prob must be in [0, 1]";
  }
  if (!cohort.fault_plan.empty()) {
    fault::FaultPlan plan;
    if (!fault::FindBuiltinPlan(cohort.fault_plan, &plan)) {
      return where + "unknown built-in fault plan \"" + cohort.fault_plan + "\"";
    }
  } else if (cohort.fault_prob > 0.0) {
    return where + "fault_prob > 0 needs a fault_plan";
  }
  return "";
}

}  // namespace

std::uint64_t FleetCellSeed(std::uint64_t master_seed, std::size_t cohort,
                            std::uint64_t member) {
  std::uint64_t hash = master_seed;
  const std::uint64_t coords[] = {kCellSeedTag, static_cast<std::uint64_t>(cohort), member};
  for (std::uint64_t coord : coords) {
    std::uint64_t state = hash ^ coord;
    hash = sim::SplitMix64(state);
  }
  return hash;
}

std::uint64_t FleetFingerprint(const FleetSpec& spec) {
  std::ostringstream out;
  out << "fleet-v" << kFormatVersion << "|" << spec.name << "|" << spec.master_seed;
  for (const FleetCohort& cohort : spec.cohorts) {
    out << "|name=" << cohort.name << ";os=" << cohort.os << ";prio=" << cohort.priority
        << ";count=" << cohort.count << ";minutes=" << HexDouble(cohort.stress_minutes)
        << ";warmup=" << HexDouble(cohort.warmup_seconds)
        << ";pit=" << HexDouble(cohort.pit_hz)
        << ";speed=" << HexDouble(cohort.speed_mhz_lo) << ","
        << HexDouble(cohort.speed_mhz_hi) << ";fault=" << cohort.fault_plan << ","
        << HexDouble(cohort.fault_prob) << ";sketch=" << (cohort.sketch ? 1 : 0)
        << ";episode_us=" << HexDouble(cohort.episode_threshold_us)
        << ";scanner=" << (cohort.options.virus_scanner ? 1 : 0) << ";wl=";
    for (std::size_t i = 0; i < cohort.workloads.size(); ++i) {
      out << (i == 0 ? "" : ",") << cohort.workloads[i];
      if (i < cohort.workload_weights.size()) {
        out << "*" << HexDouble(cohort.workload_weights[i]);
      }
    }
  }
  return Fnv1a64(out.str());
}

Fleet::Fleet(FleetSpec spec) : spec_(std::move(spec)) {
  if (spec_.cohorts.empty()) {
    error_ = "fleet spec has no cohorts";
    return;
  }
  cohort_begin_.reserve(spec_.cohorts.size() + 1);
  cohort_begin_.push_back(0);
  plans_.resize(spec_.cohorts.size());
  for (std::size_t c = 0; c < spec_.cohorts.size(); ++c) {
    const FleetCohort& cohort = spec_.cohorts[c];
    const std::string problem = ValidateCohort(cohort, c);
    if (!problem.empty()) {
      error_ = problem;
      return;
    }
    if (!cohort.fault_plan.empty()) {
      fault::FindBuiltinPlan(cohort.fault_plan, &plans_[c]);
    }
    cohort_begin_.push_back(cohort_begin_.back() + cohort.count);
  }
  cell_count_ = cohort_begin_.back();
  fingerprint_ = FleetFingerprint(spec_);
}

FleetCell Fleet::CellAt(std::uint64_t index) const {
  FleetCell cell;
  cell.index = index;
  // Cohorts are few; a linear scan beats a binary search's branch misses.
  std::size_t c = 0;
  while (c + 1 < cohort_begin_.size() && index >= cohort_begin_[c + 1]) {
    ++c;
  }
  cell.cohort = c;
  cell.member = index - cohort_begin_[c];
  cell.seed = FleetCellSeed(spec_.master_seed, c, cell.member);

  // Per-member draws ride a separate tagged stream so they can never skew
  // the simulation's RNG, and the draw *count* stays fixed (three draws per
  // member) so adding a prior later shifts nothing that exists today.
  const FleetCohort& cohort = spec_.cohorts[c];
  std::uint64_t state = cell.seed ^ kDrawSeedTag;
  sim::Rng draws(sim::SplitMix64(state));
  const double u_speed = draws.NextDouble();
  const double u_workload = draws.NextDouble();
  const double u_fault = draws.NextDouble();

  if (cohort.speed_mhz_hi > cohort.speed_mhz_lo) {
    const double log_lo = std::log(cohort.speed_mhz_lo);
    const double log_hi = std::log(cohort.speed_mhz_hi);
    cell.speed_mhz = std::exp(log_lo + u_speed * (log_hi - log_lo));
  } else {
    cell.speed_mhz = cohort.speed_mhz_lo;
  }

  if (cohort.workloads.size() > 1) {
    if (cohort.workload_weights.empty()) {
      cell.workload_index = std::min(
          cohort.workloads.size() - 1,
          static_cast<std::size_t>(u_workload *
                                   static_cast<double>(cohort.workloads.size())));
    } else {
      double total = 0.0;
      for (const double w : cohort.workload_weights) {
        total += w;
      }
      double target = u_workload * total;
      std::size_t pick = 0;
      while (pick + 1 < cohort.workload_weights.size()) {
        target -= cohort.workload_weights[pick];
        if (target < 0.0) {
          break;
        }
        ++pick;
      }
      cell.workload_index = pick;
    }
  }

  cell.fault_active = cohort.fault_prob > 0.0 && u_fault < cohort.fault_prob;
  return cell;
}

LabConfig Fleet::CellConfig(const FleetCell& cell) const {
  const FleetCohort& cohort = spec_.cohorts[cell.cohort];
  LabConfig config;
  OsProfileByName(cohort.os, &config.os);
  ScaleProfileForSpeed(&config.os, cell.speed_mhz);
  WorkloadByName(cohort.workloads[cell.workload_index], &config.stress);
  config.thread_priority = cohort.priority;
  config.stress_minutes = cohort.stress_minutes;
  config.warmup_seconds = cohort.warmup_seconds;
  // Sampling rate: reprogram the PIT to the cohort's rate and keep
  // ARBITRARY_DELAY at exactly one tick (1 ms at the paper's 1 kHz).
  config.driver.pit_hz = cohort.pit_hz;
  config.driver.timer_delay_ms = 1000.0 / cohort.pit_hz;
  config.seed = cell.seed;
  config.options = cohort.options;
  config.obs.sketch = cohort.sketch;
  if (cohort.episode_threshold_us > 0.0) {
    config.obs.episode_threshold_us = cohort.episode_threshold_us;
    config.obs.anatomy = true;
  }
  if (cell.fault_active) {
    config.faults = &plans_[cell.cohort];
  }
  return config;
}

// --- Spec JSON ---------------------------------------------------------------

bool FleetSpecFromJson(std::string_view text, FleetSpec* spec, std::string* error) {
  *spec = FleetSpec{};
  const obs::JsonParseResult parsed = obs::ParseJson(text);
  if (!parsed.valid) {
    if (error != nullptr) {
      std::ostringstream message;
      message << "fleet spec JSON error at line " << parsed.error_line << ", column "
              << parsed.error_column << ": " << parsed.error;
      *error = message.str();
    }
    return false;
  }
  const obs::JsonValue& root = parsed.value;
  if (!root.is_object()) {
    if (error != nullptr) {
      *error = "fleet spec must be a JSON object";
    }
    return false;
  }
  FleetSpec result;
  result.name = root.StringOr("name", "fleet");
  result.master_seed = static_cast<std::uint64_t>(root.NumberOr("master_seed", 1999.0));
  const obs::JsonValue* cohorts = root.Find("cohorts");
  if (cohorts == nullptr || !cohorts->is_array() || cohorts->items().empty()) {
    if (error != nullptr) {
      *error = "fleet spec needs a non-empty cohorts array";
    }
    return false;
  }
  for (const obs::JsonValue& entry : cohorts->items()) {
    if (!entry.is_object()) {
      if (error != nullptr) {
        *error = "cohort entries must be objects";
      }
      return false;
    }
    FleetCohort cohort;
    cohort.name = entry.StringOr("name", "cohort" + std::to_string(result.cohorts.size()));
    cohort.os = entry.StringOr("os", cohort.os);
    const obs::JsonValue* workloads = entry.Find("workloads");
    if (workloads != nullptr) {
      if (!workloads->is_array()) {
        if (error != nullptr) {
          *error = cohort.name + ": workloads must be an array of names";
        }
        return false;
      }
      cohort.workloads.clear();
      for (const obs::JsonValue& w : workloads->items()) {
        if (!w.is_string()) {
          if (error != nullptr) {
            *error = cohort.name + ": workloads must be strings";
          }
          return false;
        }
        cohort.workloads.push_back(w.as_string());
      }
    }
    const obs::JsonValue* weights = entry.Find("workload_weights");
    if (weights != nullptr) {
      if (!weights->is_array()) {
        if (error != nullptr) {
          *error = cohort.name + ": workload_weights must be an array of numbers";
        }
        return false;
      }
      for (const obs::JsonValue& w : weights->items()) {
        if (!w.is_number()) {
          if (error != nullptr) {
            *error = cohort.name + ": workload_weights must be numbers";
          }
          return false;
        }
        cohort.workload_weights.push_back(w.as_number());
      }
    }
    cohort.priority = static_cast<int>(entry.NumberOr("priority", 28.0));
    cohort.count = static_cast<std::uint64_t>(entry.NumberOr("count", 1.0));
    cohort.stress_minutes = entry.NumberOr("stress_minutes", cohort.stress_minutes);
    cohort.warmup_seconds = entry.NumberOr("warmup_seconds", cohort.warmup_seconds);
    cohort.pit_hz = entry.NumberOr("pit_hz", cohort.pit_hz);
    const obs::JsonValue* speed = entry.Find("speed_mhz");
    if (speed != nullptr) {
      if (speed->is_number()) {
        cohort.speed_mhz_lo = cohort.speed_mhz_hi = speed->as_number();
      } else if (speed->is_array() && speed->items().size() == 2 &&
                 speed->items()[0].is_number() && speed->items()[1].is_number()) {
        cohort.speed_mhz_lo = speed->items()[0].as_number();
        cohort.speed_mhz_hi = speed->items()[1].as_number();
      } else {
        if (error != nullptr) {
          *error = cohort.name + ": speed_mhz must be a number or [lo, hi]";
        }
        return false;
      }
    }
    cohort.fault_plan = entry.StringOr("fault_plan", "");
    cohort.fault_prob = entry.NumberOr("fault_prob", 0.0);
    cohort.sketch = entry.BoolOr("sketch", false);
    cohort.episode_threshold_us = entry.NumberOr("episode_threshold_us", 0.0);
    cohort.options.virus_scanner = entry.BoolOr("virus_scanner", false);
    const std::string problem = ValidateCohort(cohort, result.cohorts.size());
    if (!problem.empty()) {
      if (error != nullptr) {
        *error = problem;
      }
      return false;
    }
    result.cohorts.push_back(std::move(cohort));
  }
  *spec = std::move(result);
  return true;
}

bool LoadFleetSpec(const std::string& path, FleetSpec* spec, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot read fleet spec: " + path;
    }
    return false;
  }
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return FleetSpecFromJson(bytes.str(), spec, error);
}

// --- Record serialization ----------------------------------------------------

namespace {

// Append-based builders: records are serialized once per cell, so at
// population scale the ostringstream/temporary-string idiom of report_io
// shows up in cells/sec. These produce byte-identical text with plain
// appends into one reserved buffer.
void AppendU64(std::string& out, std::uint64_t value) {
  char buf[20];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, result.ptr);
}

void AppendInt(std::string& out, int value) {
  char buf[16];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, result.ptr);
}

void AppendHexDouble(std::string& out, double value) {
  char buf[48];
  out.append(buf, static_cast<std::size_t>(
                      std::snprintf(buf, sizeof(buf), "%a", value)));
}

void AppendHistogram(std::string& out, const char* name,
                     const stats::LatencyHistogram& hist) {
  const stats::LatencyHistogram::State state = hist.ExportState();
  out += '"';
  out += name;
  out += "\": {\"buckets\": [";
  bool first = true;
  for (const auto& [index, count] : state.buckets) {
    if (!first) out += ", ";
    first = false;
    out += '[';
    AppendInt(out, index);
    out += ", \"";
    AppendU64(out, count);
    out += "\"]";
  }
  out += "], \"count\": \"";
  AppendU64(out, state.count);
  out += "\", \"underflow\": \"";
  AppendU64(out, state.underflow);
  out += "\", \"sum_us\": \"";
  AppendHexDouble(out, state.sum_us);
  out += "\", \"min_us\": \"";
  AppendHexDouble(out, state.min_us);
  out += "\", \"max_us\": \"";
  AppendHexDouble(out, state.max_us);
  out += "\"}";
}

void AppendSketch(std::string& out, const char* name,
                  const stats::QuantileSketch& sketch) {
  const stats::QuantileSketch::State state = sketch.ExportState();
  out += '"';
  out += name;
  out += "\": {\"levels\": [";
  for (std::size_t l = 0; l < state.levels.size(); ++l) {
    if (l != 0) out += ", ";
    out += '[';
    for (std::size_t i = 0; i < state.levels[l].size(); ++i) {
      if (i != 0) out += ", ";
      out += '"';
      AppendHexDouble(out, state.levels[l][i]);
      out += '"';
    }
    out += ']';
  }
  out += "], \"parities\": [";
  for (std::size_t l = 0; l < state.parities.size(); ++l) {
    if (l != 0) out += ", ";
    AppendInt(out, static_cast<int>(state.parities[l]));
  }
  out += "], \"tail\": [";
  for (std::size_t i = 0; i < state.tail.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    AppendHexDouble(out, state.tail[i]);
    out += '"';
  }
  out += "], \"count\": \"";
  AppendU64(out, state.count);
  out += "\", \"sum_ms\": \"";
  AppendHexDouble(out, state.sum_ms);
  out += "\", \"min_ms\": \"";
  AppendHexDouble(out, state.min_ms);
  out += "\", \"max_ms\": \"";
  AppendHexDouble(out, state.max_ms);
  out += "\"}";
}

std::string RecordPayload(const FleetCellRecord& record) {
  std::string out;
  out.reserve(1024);
  out += "{\"format\": \"";
  out += kRecordFormat;
  out += "\", \"version\": ";
  AppendInt(out, kFormatVersion);
  out += ", \"cohort\": ";
  AppendU64(out, record.cohort);
  out += ", \"samples\": \"";
  AppendU64(out, record.samples);
  out += "\", \"stress_hours\": \"";
  AppendHexDouble(out, record.stress_hours);
  out += "\", \"speed_mhz\": \"";
  AppendHexDouble(out, record.speed_mhz);
  out += "\", \"fault_activations\": \"";
  AppendU64(out, record.fault_activations);
  out += "\", \"anatomy_episodes\": \"";
  AppendU64(out, record.anatomy_episodes);
  out += "\", \"anatomy_stage_cycles\": [";
  for (std::size_t s = 0; s < obs::kAnatomyStageCount; ++s) {
    if (s != 0) out += ", ";
    out += '"';
    AppendU64(out, record.anatomy_stage_cycles[s]);
    out += '"';
  }
  out += "], \"histograms\": {";
  AppendHistogram(out, "thread", record.thread);
  out += ", ";
  AppendHistogram(out, "dpc_interrupt", record.dpc_interrupt);
  out += "}, ";
  AppendSketch(out, "thread_sketch", record.thread_sketch);
  out += '}';
  return out;
}

// Escape() of report_io, minus the intermediate string: payloads contain
// quotes on every key, so the escaped copy is the expensive one.
void AppendEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string FleetRecordToLine(const FleetCellRecord& record) {
  const std::string payload = RecordPayload(record);
  std::string out;
  out.reserve(payload.size() + payload.size() / 4 + 96);
  out += "{\"cell\": \"";
  AppendU64(out, record.index);
  out += "\", \"seed\": \"";
  AppendU64(out, record.seed);
  out += "\", \"checksum\": \"";
  AppendU64(out, Fnv1a64(payload));
  out += "\", \"payload\": \"";
  AppendEscaped(out, payload);
  out += "\"}";
  return out;
}

bool FleetRecordFromLine(std::string_view line, FleetCellRecord* record,
                         std::string* error) {
  *record = FleetCellRecord{};
  const obs::JsonParseResult parsed = obs::ParseJson(line);
  if (!parsed.valid) {
    if (error != nullptr) {
      *error = "record line is not valid JSON: " + parsed.error;
    }
    return false;
  }
  const obs::JsonValue& root = parsed.value;
  if (!root.is_object()) {
    if (error != nullptr) {
      *error = "record line is not an object";
    }
    return false;
  }
  FleetCellRecord result;
  std::uint64_t checksum = 0;
  std::string payload;
  if (!ReadU64Field(root, "cell", &result.index, error) ||
      !ReadU64Field(root, "seed", &result.seed, error) ||
      !ReadU64Field(root, "checksum", &checksum, error) ||
      !ReadStringField(root, "payload", &payload, error)) {
    return false;
  }
  if (Fnv1a64(payload) != checksum) {
    if (error != nullptr) {
      *error = "record payload checksum mismatch (torn or corrupt line)";
    }
    return false;
  }
  const obs::JsonParseResult body = obs::ParseJson(payload);
  if (!body.valid || !body.value.is_object()) {
    if (error != nullptr) {
      *error = "record payload is not a JSON object: " + body.error;
    }
    return false;
  }
  const obs::JsonValue& doc = body.value;
  if (doc.StringOr("format", "") != kRecordFormat ||
      static_cast<int>(doc.NumberOr("version", 0.0)) != kFormatVersion) {
    if (error != nullptr) {
      *error = "record payload is not a " + std::string(kRecordFormat) + " v" +
               std::to_string(kFormatVersion) + " document";
    }
    return false;
  }
  result.cohort = static_cast<std::size_t>(doc.NumberOr("cohort", 0.0));
  if (!ReadU64Field(doc, "samples", &result.samples, error) ||
      !ReadHexDoubleField(doc, "stress_hours", &result.stress_hours, error) ||
      !ReadHexDoubleField(doc, "speed_mhz", &result.speed_mhz, error) ||
      !ReadU64Field(doc, "fault_activations", &result.fault_activations, error) ||
      !ReadU64Field(doc, "anatomy_episodes", &result.anatomy_episodes, error)) {
    return false;
  }
  const obs::JsonValue* stages = doc.Find("anatomy_stage_cycles");
  if (stages == nullptr || !stages->is_array() ||
      stages->items().size() != obs::kAnatomyStageCount) {
    if (error != nullptr) {
      *error = "record needs an anatomy_stage_cycles array of " +
               std::to_string(obs::kAnatomyStageCount);
    }
    return false;
  }
  for (std::size_t s = 0; s < obs::kAnatomyStageCount; ++s) {
    const obs::JsonValue& item = stages->items()[s];
    if (!item.is_string() || !ParseU64(item.as_string(), &result.anatomy_stage_cycles[s])) {
      if (error != nullptr) {
        *error = "anatomy stage cycles must be decimal u64 strings";
      }
      return false;
    }
  }
  const obs::JsonValue* histograms = doc.Find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    if (error != nullptr) {
      *error = "record has no histograms object";
    }
    return false;
  }
  if (!ReadHistogram(*histograms, "thread", &result.thread, error) ||
      !ReadHistogram(*histograms, "dpc_interrupt", &result.dpc_interrupt, error) ||
      !ReadSketch(doc, "thread_sketch", &result.thread_sketch, error)) {
    return false;
  }
  *record = std::move(result);
  return true;
}

// --- Warm cell runner --------------------------------------------------------

WarmCellRunner::WarmCellRunner() = default;
WarmCellRunner::~WarmCellRunner() = default;

LabReport WarmCellRunner::Run(const LabConfig& config) {
  if (system_ == nullptr) {
    system_ = std::make_unique<TestSystem>(config.os, config.seed, config.options);
    ++constructions_;
  } else {
    system_->Reset(config.os, config.seed, config.options);
    ++resets_;
  }
  return RunLatencyExperimentOn(*system_, config);
}

// --- Shard runner ------------------------------------------------------------

std::string FleetShardPath(const std::string& dir, std::size_t shard, std::size_t shards) {
  return dir + "/shard_" + std::to_string(shard) + "_of_" + std::to_string(shards) +
         ".jsonl";
}

namespace {

FleetCellRecord MakeRecord(const FleetCell& cell, const LabConfig& config,
                           const LabReport& report) {
  FleetCellRecord record;
  record.index = cell.index;
  record.cohort = cell.cohort;
  record.seed = cell.seed;
  record.samples = report.samples;
  // Same recovery the matrix merge uses: total samples over the measured
  // rate gives the driver's true stress-hours, falling back to the nominal
  // duration for sample-free cells.
  record.stress_hours = report.samples_per_hour > 0.0
                            ? static_cast<double>(report.samples) / report.samples_per_hour
                            : config.stress_minutes / 60.0;
  record.speed_mhz = cell.speed_mhz;
  record.fault_activations = report.fault_activations;
  record.anatomy_episodes = report.anatomy.size();
  for (const obs::AnatomyEpisode& episode : report.anatomy) {
    for (std::size_t s = 0; s < obs::kAnatomyStageCount; ++s) {
      record.anatomy_stage_cycles[s] += episode.stage_cycles[s];
    }
  }
  record.thread = report.thread;
  record.dpc_interrupt = report.dpc_interrupt;
  record.thread_sketch = report.thread_sketch;
  return record;
}

// In-order record writer: cells complete in any order (jobs > 1), lines
// leave in global-index order. Pending lines are bounded by the job count,
// so the reorder buffer never grows with the shard.
class OrderedShardWriter {
 public:
  OrderedShardWriter(std::ostream& out, std::vector<std::uint64_t> indices)
      : out_(out), indices_(std::move(indices)) {}

  // `restored` is sorted; those indices are satisfied from `restored_lines`
  // (the resume stream) instead of the pending map.
  void SetRestored(const std::vector<std::uint64_t>* restored,
                   std::function<bool(std::string*)> next_restored_line) {
    restored_ = restored;
    next_restored_line_ = std::move(next_restored_line);
  }

  bool Complete(std::uint64_t index, std::string line, std::string* error) {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.emplace(index, std::move(line));
    return Drain(error);
  }

  // Flush restored-only prefixes/suffixes (call once after all cells ran).
  bool Finish(std::string* error) {
    std::lock_guard<std::mutex> lock(mutex_);
    return Drain(error);
  }

  std::size_t written() const { return next_; }

 private:
  bool IsRestored(std::uint64_t index) const {
    return restored_ != nullptr &&
           std::binary_search(restored_->begin(), restored_->end(), index);
  }

  bool Drain(std::string* error) {
    while (next_ < indices_.size()) {
      const std::uint64_t index = indices_[next_];
      if (IsRestored(index)) {
        std::string line;
        if (!next_restored_line_(&line)) {
          *error = "resume stream ended before restored cell " + std::to_string(index);
          return false;
        }
        out_ << line << "\n";
      } else {
        auto it = pending_.find(index);
        if (it == pending_.end()) {
          break;  // waiting for an in-flight cell
        }
        out_ << it->second << "\n";
        pending_.erase(it);
      }
      ++next_;
      // Flush in batches, not per line: a flush is a write() syscall, and at
      // population scale one-per-cell costs as much as the cell itself. A
      // kill loses at most the last unflushed batch — those cells simply
      // re-run on resume, which the torn-line recovery already covers.
      if (next_ % kFlushBatch == 0) {
        out_.flush();
      }
    }
    if (next_ == indices_.size()) {
      out_.flush();
    }
    if (!out_) {
      *error = "shard record write failed";
      return false;
    }
    return true;
  }

  static constexpr std::size_t kFlushBatch = 32;

  std::ostream& out_;
  std::vector<std::uint64_t> indices_;  // this shard's cells, ascending
  const std::vector<std::uint64_t>* restored_ = nullptr;
  std::function<bool(std::string*)> next_restored_line_;
  std::mutex mutex_;
  std::map<std::uint64_t, std::string> pending_;
  std::size_t next_ = 0;
};

}  // namespace

FleetShardResult RunFleetShard(const Fleet& fleet, const FleetShardOptions& options) {
  using Clock = std::chrono::steady_clock;
  FleetShardResult result;
  if (!fleet.error().empty()) {
    result.error = fleet.error();
    return result;
  }
  if (options.shards == 0 || options.shard >= options.shards) {
    result.error = "shard index must satisfy 0 <= shard < shards";
    return result;
  }
  if (options.out_path.empty()) {
    result.error = "fleet shard needs an output path";
    return result;
  }
  if (options.chaos_delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<long>(options.chaos_delay_ms * 1000.0)));
  }

  // The shard's scope this run: stride cells inside [cell_lo, cell_hi),
  // minus quarantined cells. A bisection probe narrows the window; the
  // quarantine manifest removes isolated cells for good.
  const std::uint64_t window_hi = options.cell_hi == 0
                                      ? fleet.cell_count()
                                      : std::min<std::uint64_t>(options.cell_hi,
                                                                fleet.cell_count());
  std::vector<std::uint64_t> scope;
  for (std::uint64_t i = options.shard; i < fleet.cell_count(); i += options.shards) {
    if (i < options.cell_lo || i >= window_hi) {
      continue;
    }
    if (std::binary_search(options.skip_cells.begin(), options.skip_cells.end(), i)) {
      continue;
    }
    scope.push_back(i);
  }
  result.cells_total = scope.size();

  // --- Resume pass: trust nothing — a kept record must parse, checksum, and
  // carry the seed this spec derives for its cell. The file is index-sorted
  // by the write contract; anything after an out-of-order line is suspect
  // and re-runs.
  std::vector<std::uint64_t> restored;
  {
    std::ifstream in(options.out_path, std::ios::binary);
    if (in) {
      std::string line;
      std::uint64_t last_index = 0;
      bool first = true;
      while (std::getline(in, line)) {
        if (line.empty()) {
          continue;
        }
        FleetCellRecord record;
        std::string parse_error;
        if (!FleetRecordFromLine(line, &record, &parse_error)) {
          result.warnings.push_back("shard record rejected (" + parse_error +
                                    "); re-running that cell");
          continue;
        }
        if (!first && record.index <= last_index) {
          result.warnings.push_back("shard records out of order at cell " +
                                    std::to_string(record.index) +
                                    "; ignoring the remainder");
          break;
        }
        first = false;
        last_index = record.index;
        if (record.index % options.shards != options.shard ||
            record.index >= fleet.cell_count()) {
          result.warnings.push_back("record for cell " + std::to_string(record.index) +
                                    " does not belong to this shard; dropped");
          continue;
        }
        const FleetCell cell = fleet.CellAt(record.index);
        if (record.seed != cell.seed) {
          result.warnings.push_back("cell " + std::to_string(record.index) +
                                    ": record seed mismatch; re-running");
          continue;
        }
        restored.push_back(record.index);
      }
    }
  }
  result.cells_restored = restored.size();

  std::vector<std::uint64_t> missing;
  for (const std::uint64_t index : scope) {
    if (!std::binary_search(restored.begin(), restored.end(), index)) {
      missing.push_back(index);
    }
  }
  if (missing.empty()) {
    // Complete shard: leave the file's bytes exactly as they are.
    return result;
  }

  // The writer emits the union of restored records (wherever they fall —
  // work from earlier probe windows is preserved) and this run's scope, all
  // in ascending global-index order.
  std::vector<std::uint64_t> indices;
  indices.reserve(restored.size() + scope.size());
  std::merge(restored.begin(), restored.end(), scope.begin(), scope.end(),
             std::back_inserter(indices));
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());

  // Output: fresh shards append straight to the final path (batched flush —
  // a killed worker keeps its prefix up to the last flushed batch); partial
  // resumes stream-rewrite old +
  // new records to a temp file and rename, so a second kill still finds the
  // original prefix intact.
  const bool rewrite = !restored.empty();
  const std::string write_path = rewrite ? options.out_path + ".tmp" : options.out_path;
  std::ofstream out(write_path, std::ios::trunc | std::ios::binary);
  if (!out) {
    result.error = "cannot write shard records: " + write_path;
    return result;
  }
  std::ifstream resume_stream;
  OrderedShardWriter writer(out, indices);
  if (rewrite) {
    resume_stream.open(options.out_path, std::ios::binary);
    // Re-verify nothing on the second pass: emit the byte-identical lines of
    // the records the first pass already verified, skipping rejected ones.
    auto* stream = &resume_stream;
    auto* fleet_ptr = &fleet;
    auto* opts = &options;
    writer.SetRestored(&restored, [stream, fleet_ptr, opts](std::string* line) {
      std::string candidate;
      while (std::getline(*stream, candidate)) {
        if (candidate.empty()) {
          continue;
        }
        FleetCellRecord record;
        std::string parse_error;
        if (!FleetRecordFromLine(candidate, &record, &parse_error)) {
          continue;
        }
        if (record.index >= fleet_ptr->cell_count() ||
            record.index % opts->shards != opts->shard ||
            record.seed != fleet_ptr->CellAt(record.index).seed) {
          continue;
        }
        *line = std::move(candidate);
        return true;
      }
      return false;
    });
  }

  runtime::Supervisor supervisor(options.supervision);
  std::mutex result_mutex;
  std::string write_error;
  const Clock::time_point run_start = Clock::now();
  runtime::ParallelFor(options.jobs, missing.size(), [&](std::size_t w) {
    {
      std::lock_guard<std::mutex> lock(result_mutex);
      if (!write_error.empty()) {
        return;  // the shard file is already broken; don't waste the cells
      }
    }
    const std::uint64_t index = missing[w];
    const FleetCell cell = fleet.CellAt(index);
    // One warmed machine per pool worker, reused across every cell the
    // worker runs this call — the amortized-setup half of the tentpole.
    thread_local WarmCellRunner runner;
    std::string line;
    const auto body = [&](int attempt, runtime::Watchdog& watchdog) {
      (void)attempt;  // the seed is attempt-invariant by design
      if (options.poison_cell >= 0 &&
          index == static_cast<std::uint64_t>(options.poison_cell)) {
        // Poisoned-cell fixture: take the whole process down, like a wild
        // write would — the in-process exception barrier cannot catch this.
        std::abort();
      }
      LabConfig config = fleet.CellConfig(cell);
      if (watchdog.armed()) {
        config.supervision.watchdog = &watchdog;
      }
      const LabReport report = runner.Run(config);
      line = FleetRecordToLine(MakeRecord(cell, config, report));
    };
    const std::optional<runtime::CellFailure> failure =
        supervisor.RunCell(static_cast<std::size_t>(index), cell.seed, body);
    std::lock_guard<std::mutex> lock(result_mutex);
    ++result.cells_executed;
    if (failure) {
      result.failures.push_back(*failure);
    } else {
      std::string error;
      if (!writer.Complete(index, std::move(line), &error)) {
        if (write_error.empty()) {
          write_error = error;
        }
      }
    }
    if (options.chaos_kill_after_cells > 0 &&
        result.cells_executed >= options.chaos_kill_after_cells) {
      // Host-chaos fixture: die the way a crashing host does — mid-run,
      // after an arbitrary number of flushes, with no cleanup.
      raise(SIGKILL);
    }
    if (options.on_cell_done) {
      options.on_cell_done(cell, !failure);
    }
  });
  {
    std::string error;
    if (write_error.empty() && !writer.Finish(&error)) {
      write_error = error;
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - run_start).count();
  if (!write_error.empty()) {
    result.error = write_error;
    return result;
  }
  out.flush();
  out.close();
  if (rewrite) {
    resume_stream.close();
    if (!result.failures.empty()) {
      // Keep the original file: the rewrite is incomplete and the original
      // still holds every verified record for the next resume.
      std::remove(write_path.c_str());
    } else if (std::rename(write_path.c_str(), options.out_path.c_str()) != 0) {
      result.error = "cannot rename " + write_path + " over " + options.out_path;
    }
  }
  return result;
}

// --- Quarantine manifest -----------------------------------------------------

bool LoadFleetQuarantine(const std::string& path,
                         std::vector<FleetQuarantineEntry>* entries,
                         std::string* error) {
  entries->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot read quarantine manifest: " + path;
    }
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    const obs::JsonParseResult parsed = obs::ParseJson(line);
    if (!parsed.valid || !parsed.value.is_object()) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_no) +
                 ": quarantine line is not a JSON object";
      }
      return false;
    }
    FleetQuarantineEntry entry;
    std::string parse_error;
    if (!ReadU64Field(parsed.value, "cell", &entry.cell, &parse_error) ||
        !ReadU64Field(parsed.value, "seed", &entry.seed, &parse_error)) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_no) + ": " + parse_error;
      }
      return false;
    }
    entry.taxonomy = parsed.value.StringOr("taxonomy", "");
    entry.attempts = static_cast<int>(parsed.value.NumberOr("attempts", 1.0));
    if (entry.taxonomy.empty()) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_no) + ": missing taxonomy";
      }
      return false;
    }
    entries->push_back(std::move(entry));
  }
  std::sort(entries->begin(), entries->end(),
            [](const FleetQuarantineEntry& a, const FleetQuarantineEntry& b) {
              return a.cell < b.cell;
            });
  return true;
}

bool SaveFleetQuarantine(const std::string& path,
                         const std::vector<FleetQuarantineEntry>& entries,
                         std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      if (error != nullptr) {
        *error = "cannot write quarantine manifest: " + tmp;
      }
      return false;
    }
    for (const FleetQuarantineEntry& entry : entries) {
      out << "{\"cell\": \"" << U64String(entry.cell) << "\", \"seed\": \""
          << U64String(entry.seed) << "\", \"taxonomy\": \"" << Escape(entry.taxonomy)
          << "\", \"attempts\": " << entry.attempts << "}\n";
    }
    out.flush();
    if (!out) {
      if (error != nullptr) {
        *error = "quarantine manifest write failed: " + tmp;
      }
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "cannot rename " + tmp + " over " + path;
    }
    return false;
  }
  return true;
}

// --- Speculative stitch ------------------------------------------------------

bool StitchShardFiles(const Fleet& fleet, std::size_t shard, std::size_t shards,
                      const std::string& main_path, const std::string& extra_path,
                      std::string* error) {
  if (!fleet.error().empty()) {
    if (error != nullptr) {
      *error = fleet.error();
    }
    return false;
  }
  // Verified record lines from both files, main winning duplicates
  // (map::emplace keeps the first insertion). Torn or foreign lines are
  // skipped — the completion run's resume pass is the final authority.
  std::map<std::uint64_t, std::string> lines;
  const auto collect = [&](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      FleetCellRecord record;
      std::string parse_error;
      if (!FleetRecordFromLine(line, &record, &parse_error)) {
        continue;
      }
      if (record.index >= fleet.cell_count() || record.index % shards != shard ||
          record.seed != fleet.CellAt(record.index).seed) {
        continue;
      }
      lines.emplace(record.index, line);
    }
  };
  collect(main_path);
  collect(extra_path);
  const std::string tmp = main_path + ".stitch";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      if (error != nullptr) {
        *error = "cannot write stitched shard: " + tmp;
      }
      return false;
    }
    for (const auto& [index, line] : lines) {
      out << line << "\n";
    }
    out.flush();
    if (!out) {
      if (error != nullptr) {
        *error = "stitched shard write failed: " + tmp;
      }
      return false;
    }
  }
  if (std::rename(tmp.c_str(), main_path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "cannot rename " + tmp + " over " + main_path;
    }
    return false;
  }
  return true;
}

// --- Streaming merge ---------------------------------------------------------

bool MergeFleetShards(const Fleet& fleet, const std::vector<std::string>& shard_paths,
                      FleetReport* report, std::string* error) {
  return MergeFleetShards(fleet, shard_paths, FleetMergeOptions{}, report, error);
}

bool MergeFleetShards(const Fleet& fleet, const std::vector<std::string>& shard_paths,
                      const FleetMergeOptions& merge_options, FleetReport* report,
                      std::string* error) {
  *report = FleetReport{};
  if (!fleet.error().empty()) {
    if (error != nullptr) {
      *error = fleet.error();
    }
    return false;
  }
  if (shard_paths.empty()) {
    if (error != nullptr) {
      *error = "merge needs at least one shard path";
    }
    return false;
  }
  const std::size_t shards = shard_paths.size();
  std::vector<std::ifstream> streams(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    streams[k].open(shard_paths[k], std::ios::binary);
    if (!streams[k]) {
      if (error != nullptr) {
        *error = "cannot read shard file: " + shard_paths[k];
      }
      return false;
    }
  }

  FleetReport result;
  result.name = fleet.spec().name;
  result.fingerprint = fleet.fingerprint();
  result.cells = fleet.cell_count();
  result.cohorts.resize(fleet.spec().cohorts.size());
  for (std::size_t c = 0; c < fleet.spec().cohorts.size(); ++c) {
    result.cohorts[c].name = fleet.spec().cohorts[c].name;
    result.cohorts[c].os = fleet.spec().cohorts[c].os;
    result.cohorts[c].priority = fleet.spec().cohorts[c].priority;
    result.cohorts[c].planned = fleet.spec().cohorts[c].count;
  }

  const bool degraded = merge_options.allow_degraded;
  std::map<std::uint64_t, const FleetQuarantineEntry*> expected_quarantine;
  for (const FleetQuarantineEntry& q : merge_options.quarantined) {
    expected_quarantine.emplace(q.cell, &q);
  }
  const auto add_quarantine = [&result](FleetQuarantineEntry entry) {
    ++result.cells_quarantined;
    if (entry.cohort < result.cohorts.size()) {
      ++result.cohorts[entry.cohort].quarantined;
    }
    result.quarantine.push_back(std::move(entry));
  };
  const auto warn = [&result](std::string what) {
    result.merge_warnings.push_back(std::move(what));
  };

  // One buffered (parsed, checksummed) record per stream: the lookahead that
  // lets the degraded merge distinguish a duplicate/stale record from a
  // missing one without losing round-robin alignment.
  struct BufferedRecord {
    bool has = false;
    FleetCellRecord record;
  };
  std::vector<BufferedRecord> buffered(shards);

  // Global grid order: cell i lives at the front of stream i % shards, so
  // the k-way merge is a round-robin walk. Folding in this one fixed order —
  // whatever shard/job split produced the files — is what makes the merged
  // floating-point sums and sketch states bit-identical.
  for (std::uint64_t index = 0; index < fleet.cell_count(); ++index) {
    const std::size_t k = index % shards;
    std::ifstream& in = streams[k];
    const auto fail = [&](const std::string& what) {
      if (error != nullptr) {
        *error = "cell " + std::to_string(index) + " (shard " + std::to_string(k) +
                 "): " + what;
      }
      return false;
    };
    // The reason the last dropped line would explain this cell's gap.
    std::string drop_reason;
    std::string fatal;
    const auto fill = [&]() -> bool {  // false = strict-mode parse failure
      while (!buffered[k].has) {
        std::string line;
        while (std::getline(in, line)) {
          if (!line.empty()) {
            break;
          }
        }
        if (line.empty()) {
          return true;  // stream exhausted
        }
        FleetCellRecord record;
        std::string parse_error;
        if (!FleetRecordFromLine(line, &record, &parse_error)) {
          if (!degraded) {
            fatal = parse_error;
            return false;
          }
          drop_reason = parse_error.find("checksum mismatch") != std::string::npos
                            ? "checksum_mismatch"
                            : "corrupt_record";
          warn("shard " + std::to_string(k) + ": dropped line (" + parse_error + ")");
          continue;
        }
        buffered[k].has = true;
        buffered[k].record = std::move(record);
      }
      return true;
    };
    if (!fill()) {
      return fail(fatal);
    }
    if (degraded) {
      // Duplicate or out-of-order records sort behind the cursor: stale.
      while (buffered[k].has && buffered[k].record.index < index) {
        warn("shard " + std::to_string(k) + ": stale record for cell " +
             std::to_string(buffered[k].record.index) +
             " (duplicate or out of order); dropped");
        buffered[k].has = false;
        if (!fill()) {
          return fail(fatal);
        }
      }
    }

    const auto it_expected = expected_quarantine.find(index);
    const bool have = buffered[k].has && buffered[k].record.index == index;
    if (!have) {
      if (it_expected != expected_quarantine.end()) {
        // A cell the supervisor already isolated: an expected gap in both
        // strict and degraded mode, reported with its manifest taxonomy.
        FleetQuarantineEntry entry = *it_expected->second;
        entry.cohort = fleet.CellAt(index).cohort;
        add_quarantine(std::move(entry));
        continue;
      }
      if (!degraded) {
        if (!buffered[k].has) {
          return fail("missing record — incomplete shard, re-run it");
        }
        return fail("record is for cell " + std::to_string(buffered[k].record.index) +
                    " — shard file out of order");
      }
      const FleetCell cell = fleet.CellAt(index);
      FleetQuarantineEntry entry;
      entry.cell = index;
      entry.seed = cell.seed;
      entry.cohort = cell.cohort;
      entry.taxonomy = drop_reason.empty() ? "missing_record" : drop_reason;
      entry.attempts = 1;
      warn("cell " + std::to_string(index) + " (shard " + std::to_string(k) +
           ") quarantined by degraded merge: " + entry.taxonomy);
      add_quarantine(std::move(entry));
      continue;
    }

    FleetCellRecord record = std::move(buffered[k].record);
    buffered[k].has = false;
    const FleetCell cell = fleet.CellAt(index);
    if (record.seed != cell.seed || record.cohort != cell.cohort) {
      if (!degraded) {
        return fail("record seed/cohort does not match this spec");
      }
      FleetQuarantineEntry entry;
      entry.cell = index;
      entry.seed = cell.seed;
      entry.cohort = cell.cohort;
      entry.taxonomy = "seed_mismatch";
      entry.attempts = 1;
      warn("cell " + std::to_string(index) + " (shard " + std::to_string(k) +
           ") quarantined by degraded merge: seed_mismatch");
      add_quarantine(std::move(entry));
      continue;
    }
    if (it_expected != expected_quarantine.end()) {
      // The manifest says poisoned, yet a verified record exists (an earlier
      // attempt completed it before the cell turned): keep the data, report
      // the disagreement.
      warn("cell " + std::to_string(index) +
           " is quarantined in the manifest but has a valid record; folding it");
    }
    FleetCohortReport& cohort = result.cohorts[record.cohort];
    if (cohort.cells == 0) {
      cohort.speed_mhz_min = record.speed_mhz;
      cohort.speed_mhz_max = record.speed_mhz;
    } else {
      cohort.speed_mhz_min = std::min(cohort.speed_mhz_min, record.speed_mhz);
      cohort.speed_mhz_max = std::max(cohort.speed_mhz_max, record.speed_mhz);
    }
    ++cohort.cells;
    cohort.counters.Merge(stats::SampleCounters{record.samples, record.stress_hours});
    cohort.thread.Merge(record.thread);
    cohort.dpc_interrupt.Merge(record.dpc_interrupt);
    cohort.thread_sketch.Merge(record.thread_sketch);
    cohort.fault_cells += record.fault_activations > 0 ? 1 : 0;
    cohort.fault_activations += record.fault_activations;
    cohort.anatomy_episodes += record.anatomy_episodes;
    for (std::size_t s = 0; s < obs::kAnatomyStageCount; ++s) {
      cohort.anatomy_stage_cycles[s] += record.anatomy_stage_cycles[s];
    }
    cohort.speed_mhz_sum += record.speed_mhz;
    ++result.cells_completed;
  }
  // Conservation audit, matrix-style: completed + quarantined must cover the
  // plan exactly — the fold above is the only writer, so a mismatch can only
  // mean broken merge arithmetic.
  for (std::size_t c = 0; c < result.cohorts.size(); ++c) {
    const FleetCohortReport& cohort = result.cohorts[c];
    if (cohort.cells + cohort.quarantined != cohort.planned) {
      if (error != nullptr) {
        if (cohort.quarantined == 0) {
          *error = "cohort " + cohort.name + " folded " + std::to_string(cohort.cells) +
                   " cells, expected " + std::to_string(cohort.planned);
        } else {
          *error = "cohort " + cohort.name + " folded " + std::to_string(cohort.cells) +
                   " cells + " + std::to_string(cohort.quarantined) +
                   " quarantined, expected " + std::to_string(cohort.planned);
        }
      }
      return false;
    }
  }
  *report = std::move(result);
  return true;
}

std::string FleetReportToJson(const FleetReport& report) {
  std::ostringstream out;
  out << "{\"format\": \"" << kReportFormat << "\", \"version\": " << kFormatVersion
      << ",\n\"name\": \"" << Escape(report.name) << "\", \"fingerprint\": \""
      << U64String(report.fingerprint) << "\", \"cells\": \"" << U64String(report.cells)
      << "\",\n\"cells_completed\": \"" << U64String(report.cells_completed)
      << "\", \"cells_quarantined\": \"" << U64String(report.cells_quarantined)
      << "\",\n\"quarantine\": [";
  for (std::size_t q = 0; q < report.quarantine.size(); ++q) {
    const FleetQuarantineEntry& entry = report.quarantine[q];
    out << (q == 0 ? "\n" : ",\n") << "{\"cell\": \"" << U64String(entry.cell)
        << "\", \"seed\": \"" << U64String(entry.seed) << "\", \"cohort\": "
        << entry.cohort << ", \"taxonomy\": \"" << Escape(entry.taxonomy)
        << "\", \"attempts\": " << entry.attempts << "}";
  }
  out << "],\n\"cohorts\": [";
  for (std::size_t c = 0; c < report.cohorts.size(); ++c) {
    const FleetCohortReport& cohort = report.cohorts[c];
    out << (c == 0 ? "\n" : ",\n");
    out << "{\"name\": \"" << Escape(cohort.name) << "\", \"os\": \"" << Escape(cohort.os)
        << "\", \"priority\": " << cohort.priority << ", \"planned\": \""
        << U64String(cohort.planned) << "\", \"cells\": \"" << U64String(cohort.cells)
        << "\", \"quarantined\": \"" << U64String(cohort.quarantined)
        << "\", \"samples\": \""
        << U64String(cohort.counters.samples) << "\", \"stress_hours\": \""
        << HexDouble(cohort.counters.stress_hours) << "\", \"samples_per_hour\": \""
        << HexDouble(cohort.counters.SamplesPerHour()) << "\",\n";
    // Readable tails for humans and dashboards; the exact states below are
    // the mergeable ground truth.
    char quantiles[256];
    std::snprintf(quantiles, sizeof(quantiles),
                  "\"thread_ms\": {\"p50\": %.6g, \"p99\": %.6g, \"p999\": %.6g, "
                  "\"p9999\": %.6g, \"max\": %.6g},\n",
                  cohort.thread.QuantileMs(0.5), cohort.thread.QuantileMs(0.99),
                  cohort.thread.QuantileMs(0.999), cohort.thread.QuantileMs(0.9999),
                  cohort.thread.max_ms());
    out << quantiles;
    out << "\"speed_mhz\": {\"min\": \"" << HexDouble(cohort.speed_mhz_min)
        << "\", \"mean\": \""
        << HexDouble(cohort.cells > 0
                         ? cohort.speed_mhz_sum / static_cast<double>(cohort.cells)
                         : 0.0)
        << "\", \"max\": \"" << HexDouble(cohort.speed_mhz_max) << "\"},\n";
    out << "\"fault_cells\": \"" << U64String(cohort.fault_cells)
        << "\", \"fault_activations\": \"" << U64String(cohort.fault_activations)
        << "\", \"anatomy_episodes\": \"" << U64String(cohort.anatomy_episodes)
        << "\", \"anatomy_stage_cycles\": [";
    for (std::size_t s = 0; s < obs::kAnatomyStageCount; ++s) {
      out << (s == 0 ? "" : ", ") << "\"" << U64String(cohort.anatomy_stage_cycles[s])
          << "\"";
    }
    out << "],\n\"histograms\": {";
    WriteHistogram(out, "thread", cohort.thread);
    out << ", ";
    WriteHistogram(out, "dpc_interrupt", cohort.dpc_interrupt);
    out << "}, ";
    WriteSketch(out, "thread_sketch", cohort.thread_sketch);
    out << "}";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace wdmlat::lab
