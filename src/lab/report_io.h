// Lossless LabReport artifacts for checkpoint/resume.
//
// A resumed matrix must merge bit-identically to a fresh run, which rules
// out decimal round-tripping sloppiness: every double (histogram sums,
// min/max, sample rates) is serialized as a C99 hexfloat string ("0x1.8p+4",
// printf %a) and parsed back with strtod, which recovers the exact bits.
// 64-bit counters travel as decimal strings because JSON numbers are doubles
// here (exact only to 2^53). The document is plain JSON otherwise, readable
// by obs::ParseJson — including its hardened duplicate-key and non-finite
// rejection, so a corrupt artifact fails loudly instead of skewing a merge.
//
// The journal stores one artifact file per completed cell plus its FNV-1a
// checksum; RestoreReport is the read side used by --resume.

#ifndef SRC_LAB_REPORT_IO_H_
#define SRC_LAB_REPORT_IO_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "src/lab/lab.h"
#include "src/obs/json.h"

namespace wdmlat::lab {

// FNV-1a 64-bit over raw bytes: the journal's artifact checksum. Stable,
// dependency-free, and plenty against torn writes and bit rot (this guards
// integrity, not adversaries).
std::uint64_t Fnv1a64(std::string_view bytes);

// Exact double <-> string via C99 hexfloat. ParseHexDouble accepts only a
// full-string parse of a finite value.
std::string HexDouble(double value);
bool ParseHexDouble(std::string_view text, double* out);

// Serialize `report` to a self-describing JSON document (bit-exact; see
// file comment).
std::string ReportToJson(const LabReport& report);

// Parse a ReportToJson document back. On failure returns false and sets
// `error` (when non-null) to a one-line description; `report` is left
// default-constructed. A true return restores the report bit-exactly.
bool ReportFromJson(std::string_view text, LabReport* report, std::string* error);

// Building blocks of the artifact format, shared with the fleet's per-cell
// record serialization (src/lab/fleet.cc) so both speak the same bit-exact
// dialect: hexfloat doubles, decimal-string u64s, histogram/sketch State
// round trips with conservation validation on import.
namespace report_json {

std::string Escape(const std::string& text);
bool ParseU64(std::string_view text, std::uint64_t* out);
void WriteHistogram(std::ostringstream& out, const char* name,
                    const stats::LatencyHistogram& hist);
bool ReadHistogram(const obs::JsonValue& parent, const char* name,
                   stats::LatencyHistogram* out, std::string* error);
void WriteSketch(std::ostringstream& out, const char* name,
                 const stats::QuantileSketch& sketch);
bool ReadSketch(const obs::JsonValue& parent, const char* name, stats::QuantileSketch* out,
                std::string* error);
bool ReadU64Field(const obs::JsonValue& object, const char* key, std::uint64_t* out,
                  std::string* error);
bool ReadHexDoubleField(const obs::JsonValue& object, const char* key, double* out,
                        std::string* error);
bool ReadStringField(const obs::JsonValue& object, const char* key, std::string* out,
                     std::string* error);

}  // namespace report_json

}  // namespace wdmlat::lab

#endif  // SRC_LAB_REPORT_IO_H_
