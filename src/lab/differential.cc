#include "src/lab/differential.h"

#include <cmath>
#include <sstream>

#include "src/report/ascii_table.h"

namespace wdmlat::lab {

namespace {

std::uint64_t HourlyN(const LabReport& report) {
  const double sph = report.samples_per_hour;
  return sph > 1.0 ? static_cast<std::uint64_t>(sph) : report.samples;
}

DistributionShift MakeShift(const std::string& metric, const stats::LatencyHistogram& base,
                            const stats::LatencyHistogram& pert, std::uint64_t base_n,
                            std::uint64_t pert_n) {
  DistributionShift shift;
  shift.metric = metric;
  for (double q : DefaultShiftQuantiles()) {
    shift.quantiles.push_back(
        DistributionShift::QuantilePair{q, base.QuantileMs(q), pert.QuantileMs(q)});
  }
  for (double ms : DefaultTailThresholdsMs()) {
    shift.tails.push_back(DistributionShift::TailPair{ms, base.FractionAtOrAbove(ms),
                                                      pert.FractionAtOrAbove(ms)});
  }
  shift.baseline_max_ms = base.max_ms();
  shift.perturbed_max_ms = pert.max_ms();
  shift.baseline_hourly_worst_ms = base.ExpectedMaxOfNMs(base_n);
  shift.perturbed_hourly_worst_ms = pert.ExpectedMaxOfNMs(pert_n);
  shift.ks = stats::KsStatistic(base, pert);
  return shift;
}

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FmtDouble(double value) {
  std::ostringstream out;
  if (!std::isfinite(value)) {
    out << (value > 0 ? 1e308 : -1e308);  // JSON has no infinity
  } else {
    out << value;
  }
  return out.str();
}

void AppendRunJson(std::ostringstream& out, const char* key, const LabReport& report) {
  out << "\"" << key << "\": {\"os\": \"" << EscapeJson(report.os_name)
      << "\", \"workload\": \"" << EscapeJson(report.workload_name)
      << "\", \"priority\": " << report.thread_priority
      << ", \"samples\": " << report.samples
      << ", \"samples_per_hour\": " << FmtDouble(report.samples_per_hour)
      << ", \"fault_activations\": " << report.fault_activations << "}";
}

}  // namespace

const DistributionShift* DifferentialReport::thread_shift() const {
  for (const DistributionShift& shift : shifts) {
    if (shift.metric == "thread") {
      return &shift;
    }
  }
  return nullptr;
}

std::vector<double> DefaultShiftQuantiles() { return {0.5, 0.9, 0.99, 0.999, 0.9999}; }

std::vector<double> DefaultTailThresholdsMs() { return {1.0, 10.0, 100.0}; }

DifferentialReport RunDifferential(const LabConfig& config, const fault::FaultPlan& plan) {
  DifferentialReport report;
  report.plan = plan;

  LabConfig base_config = config;
  base_config.faults = nullptr;
  report.baseline = RunLatencyExperiment(base_config);

  LabConfig pert_config = config;
  pert_config.faults = &plan;
  report.perturbed = RunLatencyExperiment(pert_config);

  const std::uint64_t base_n = HourlyN(report.baseline);
  const std::uint64_t pert_n = HourlyN(report.perturbed);
  report.shifts.push_back(
      MakeShift("thread", report.baseline.thread, report.perturbed.thread, base_n, pert_n));
  report.shifts.push_back(MakeShift("dpc_interrupt", report.baseline.dpc_interrupt,
                                    report.perturbed.dpc_interrupt, base_n, pert_n));
  report.shifts.push_back(MakeShift("thread_interrupt", report.baseline.thread_interrupt,
                                    report.perturbed.thread_interrupt, base_n, pert_n));
  if (report.baseline.has_interrupt_latency && report.perturbed.has_interrupt_latency) {
    report.shifts.push_back(MakeShift("interrupt", report.baseline.interrupt,
                                      report.perturbed.interrupt, base_n, pert_n));
  }
  return report;
}

std::string RenderDifferentialTables(const DifferentialReport& report) {
  std::ostringstream out;
  out << "Differential run: plan \"" << report.plan.name << "\" (seed " << report.plan.seed
      << ", " << report.plan.specs.size() << " fault spec(s), "
      << report.perturbed.fault_activations << " activations) on " << report.baseline.os_name
      << " / " << report.baseline.workload_name << " / prio "
      << report.baseline.thread_priority << "\n\n";
  for (const DistributionShift& shift : report.shifts) {
    report::AsciiTable table({shift.metric + " latency", "baseline", "perturbed", "ratio"});
    auto ratio = [](double base, double pert) {
      return base > 0.0 ? report::AsciiTable::Fmt(pert / base, 2) + "x" : std::string("-");
    };
    for (const auto& q : shift.quantiles) {
      std::ostringstream label;
      label << "Q(" << q.q << ") ms";
      table.AddRow({label.str(), report::AsciiTable::Fmt(q.baseline_ms, 3),
                    report::AsciiTable::Fmt(q.perturbed_ms, 3),
                    ratio(q.baseline_ms, q.perturbed_ms)});
    }
    for (const auto& t : shift.tails) {
      std::ostringstream label;
      label << "P[>= " << t.threshold_ms << " ms]";
      table.AddRow({label.str(), report::AsciiTable::Fmt(t.baseline_fraction * 100.0, 4) + "%",
                    report::AsciiTable::Fmt(t.perturbed_fraction * 100.0, 4) + "%",
                    ratio(t.baseline_fraction, t.perturbed_fraction)});
    }
    table.AddRule();
    table.AddRow({"expected hourly worst ms",
                  report::AsciiTable::Fmt(shift.baseline_hourly_worst_ms, 3),
                  report::AsciiTable::Fmt(shift.perturbed_hourly_worst_ms, 3),
                  ratio(shift.baseline_hourly_worst_ms, shift.perturbed_hourly_worst_ms)});
    table.AddRow({"observed max ms", report::AsciiTable::Fmt(shift.baseline_max_ms, 3),
                  report::AsciiTable::Fmt(shift.perturbed_max_ms, 3),
                  ratio(shift.baseline_max_ms, shift.perturbed_max_ms)});
    table.AddRow({"KS statistic", "-", report::AsciiTable::Fmt(shift.ks, 4), "-"});
    out << table.Render() << "\n";
  }
  return out.str();
}

std::string DifferentialToCsv(const DifferentialReport& report) {
  std::ostringstream out;
  out << "metric,statistic,baseline,perturbed\n";
  for (const DistributionShift& shift : report.shifts) {
    for (const auto& q : shift.quantiles) {
      out << shift.metric << ",q" << q.q << "_ms," << q.baseline_ms << "," << q.perturbed_ms
          << "\n";
    }
    for (const auto& t : shift.tails) {
      out << shift.metric << ",frac_at_or_above_" << t.threshold_ms << "ms,"
          << t.baseline_fraction << "," << t.perturbed_fraction << "\n";
    }
    out << shift.metric << ",hourly_worst_ms," << shift.baseline_hourly_worst_ms << ","
        << shift.perturbed_hourly_worst_ms << "\n";
    out << shift.metric << ",max_ms," << shift.baseline_max_ms << "," << shift.perturbed_max_ms
        << "\n";
    out << shift.metric << ",ks,," << shift.ks << "\n";
  }
  return out.str();
}

std::string DifferentialToJson(const DifferentialReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "\"plan\": {\"name\": \"" << EscapeJson(report.plan.name)
      << "\", \"seed\": " << report.plan.seed
      << ", \"specs\": " << report.plan.specs.size()
      << ", \"activations\": " << report.perturbed.fault_activations << "},\n";
  AppendRunJson(out, "baseline", report.baseline);
  out << ",\n";
  AppendRunJson(out, "perturbed", report.perturbed);
  out << ",\n\"shifts\": [";
  for (std::size_t i = 0; i < report.shifts.size(); ++i) {
    const DistributionShift& shift = report.shifts[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "{\"metric\": \"" << EscapeJson(shift.metric) << "\", \"ks\": "
        << FmtDouble(shift.ks);
    out << ", \"max_ms\": {\"baseline\": " << FmtDouble(shift.baseline_max_ms)
        << ", \"perturbed\": " << FmtDouble(shift.perturbed_max_ms) << "}";
    out << ", \"hourly_worst_ms\": {\"baseline\": "
        << FmtDouble(shift.baseline_hourly_worst_ms)
        << ", \"perturbed\": " << FmtDouble(shift.perturbed_hourly_worst_ms) << "}";
    out << ", \"quantiles\": [";
    for (std::size_t j = 0; j < shift.quantiles.size(); ++j) {
      const auto& q = shift.quantiles[j];
      out << (j == 0 ? "" : ", ") << "{\"q\": " << FmtDouble(q.q)
          << ", \"baseline_ms\": " << FmtDouble(q.baseline_ms)
          << ", \"perturbed_ms\": " << FmtDouble(q.perturbed_ms) << "}";
    }
    out << "], \"fraction_at_or_above\": [";
    for (std::size_t j = 0; j < shift.tails.size(); ++j) {
      const auto& t = shift.tails[j];
      out << (j == 0 ? "" : ", ") << "{\"ms\": " << FmtDouble(t.threshold_ms)
          << ", \"baseline\": " << FmtDouble(t.baseline_fraction)
          << ", \"perturbed\": " << FmtDouble(t.perturbed_fraction) << "}";
    }
    out << "]}";
  }
  out << "\n]\n}\n";
  return out.str();
}

}  // namespace wdmlat::lab
