// The assembled test machine of the paper's Table 2: a 300 MHz Pentium II
// with PCI/USB devices only (no legacy ISA), DMA IDE disk, EtherExpress Pro
// 100 NIC and a WDM audio device, running one of the two OS personalities.

#ifndef SRC_LAB_TEST_SYSTEM_H_
#define SRC_LAB_TEST_SYSTEM_H_

#include <cstdint>
#include <memory>

#include "src/drivers/device_drivers.h"
#include "src/hw/audio_device.h"
#include "src/hw/ide_disk.h"
#include "src/hw/interrupt_controller.h"
#include "src/hw/nic.h"
#include "src/hw/pit.h"
#include "src/hw/usb_uhci.h"
#include "src/kernel/kernel.h"
#include "src/kernel/profile.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/vmm98/sound_scheme.h"
#include "src/vmm98/virus_scanner.h"
#include "src/workload/stress_load.h"

namespace wdmlat::lab {

struct TestSystemOptions {
  // Plus! 98 Pack virus scanner (Windows 98 only; Figure 5). Ignored on NT.
  bool virus_scanner = false;
  // Windows sound scheme (Windows 98 only; Table 4). Default: "no sound".
  vmm98::SchemeKind sound_scheme = vmm98::SchemeKind::kNoSounds;
  // Baseline OS self-noise (disable only for deterministic unit tests).
  bool kernel_self_noise = true;
};

class TestSystem {
 public:
  TestSystem(kernel::KernelProfile os, std::uint64_t seed,
             TestSystemOptions options = TestSystemOptions{});

  // Warm reuse (lab::Fleet): tear down the kernel, devices and drivers,
  // Reset() the engine — keeping its grown bucket/slab capacity — and
  // rebuild the machine for a new cell. Bit-identical to constructing a
  // fresh TestSystem with the same arguments (the engine restarts at time 0
  // / sequence 0 and the RNG is reseeded), but without reallocating the
  // event calendar; guarded by the fleet warm-runner golden-checksum test.
  void Reset(kernel::KernelProfile os, std::uint64_t seed,
             TestSystemOptions options = TestSystemOptions{});

  sim::Engine& engine() { return engine_; }
  kernel::Kernel& kernel() { return *kernel_; }
  hw::IdeDisk& disk() { return *disk_; }
  hw::Nic& nic() { return *nic_; }
  // The OS-appropriate audio path (Table 2): the PCI Ensoniq device on NT,
  // the Philips USB speakers behind the UHCI controller on Windows 98.
  hw::AudioStreamDevice& audio() {
    return usb_audio_ ? static_cast<hw::AudioStreamDevice&>(*usb_audio_)
                      : static_cast<hw::AudioStreamDevice&>(*audio_);
  }
  hw::AudioDevice* pci_audio() { return audio_.get(); }
  hw::UhciController* usb_controller() { return usb_audio_.get(); }
  drivers::DiskDriver& disk_driver() { return *disk_driver_; }
  drivers::NicDriver& nic_driver() { return *nic_driver_; }
  drivers::AudioDriver* audio_driver() { return audio_driver_.get(); }
  drivers::UsbAudioDriver* usb_audio_driver() { return usb_audio_driver_.get(); }
  vmm98::VirusScanner* virus_scanner() { return virus_scanner_.get(); }
  vmm98::SoundScheme* sound_scheme() { return sound_scheme_.get(); }

  // Dependency bundle for workloads.
  workload::StressLoad::Deps deps();

  // Fork a deterministic child RNG for tools/workloads on this system.
  sim::Rng ForkRng() { return rng_.Fork(); }

  // Advance virtual time.
  void RunFor(double seconds) { engine_.RunUntil(engine_.now() + sim::SecToCycles(seconds)); }
  void RunForMinutes(double minutes) { RunFor(minutes * 60.0); }

 private:
  // Shared tail of the constructor and Reset(): everything downstream of the
  // engine and RNG (controller, devices, kernel, drivers, self-noise).
  void Build(kernel::KernelProfile os, const TestSystemOptions& options);

  sim::Engine engine_;
  sim::Rng rng_;
  std::unique_ptr<hw::InterruptController> pic_;
  int pit_line_;
  int disk_line_;
  int nic_line_;
  int audio_line_;
  std::unique_ptr<hw::Pit> pit_;
  std::unique_ptr<hw::IdeDisk> disk_;
  std::unique_ptr<hw::Nic> nic_;
  std::unique_ptr<hw::AudioDevice> audio_;
  std::unique_ptr<hw::UhciController> usb_audio_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<drivers::DiskDriver> disk_driver_;
  std::unique_ptr<drivers::NicDriver> nic_driver_;
  std::unique_ptr<drivers::AudioDriver> audio_driver_;
  std::unique_ptr<drivers::UsbAudioDriver> usb_audio_driver_;
  std::unique_ptr<vmm98::VirusScanner> virus_scanner_;
  std::unique_ptr<vmm98::SoundScheme> sound_scheme_;
};

}  // namespace wdmlat::lab

#endif  // SRC_LAB_TEST_SYSTEM_H_
