// lab::HostChaos — deterministic host-failure injection for fleet runs.
//
// The fleet's crash-safety story (flushed record prefixes + verify-and-keep
// resume + degraded merge) is only credible if it survives the failures real
// multi-host runs hit: workers killed mid-flush, shard files truncated or
// bit-rotted by a dying disk, and stragglers delayed by a loaded host. This
// harness derives a perturbation plan for every (shard, attempt) pair from
// one chaos seed — a SplitMix64 hash chain over the coordinates, the same
// construction the fleet uses for cell seeds — so a chaos run is exactly
// reproducible from `--chaos-seed N`.
//
// Convergence is guaranteed by construction: attempts beyond
// kMaxChaosAttempts draw a clean plan, so with the supervisor's default
// three attempts per window every shard eventually runs unperturbed. The
// chaos determinism test then asserts the strongest possible property: a
// chaos run (plus resume) produces fleet.json byte-identical to an
// unperturbed run whenever nothing was quarantined.

#ifndef SRC_LAB_HOST_CHAOS_H_
#define SRC_LAB_HOST_CHAOS_H_

#include <cstddef>
#include <cstdint>

#include "src/runtime/fleet_supervisor.h"

namespace wdmlat::lab {

class HostChaos {
 public:
  // Attempts beyond this always draw a clean plan (see above).
  static constexpr int kMaxChaosAttempts = 2;

  explicit HostChaos(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  // The perturbation for `attempt` (1-based, counting every spawn of the
  // shard) of `shard`. Pure function of (seed, shard, attempt).
  runtime::FleetChaosPlan PlanFor(std::size_t shard, int attempt) const;

 private:
  std::uint64_t seed_ = 0;
};

}  // namespace wdmlat::lab

#endif  // SRC_LAB_HOST_CHAOS_H_
