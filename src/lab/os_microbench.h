// Classic OS microbenchmarks, lmbench / hbench:OS style (paper Section 1.2).
//
// "Microbenchmarks measure the cost of low-level primitive OS services, such
// as thread context switch time, by measuring the average cost over
// thousands of invocations of the OS service on an otherwise unloaded
// system. [...] microbenchmarks have not been very useful in assessing the
// OS and hardware overhead that an application or driver will actually
// receive in practice."
//
// This suite exists to *reproduce that critique*: run it on both OS
// personalities and the averages come out within tens of percent — nothing
// like the order-of-magnitude difference the loaded latency distributions
// show. bench/microbench_comparison.cc prints both side by side.

#ifndef SRC_LAB_OS_MICROBENCH_H_
#define SRC_LAB_OS_MICROBENCH_H_

#include <cstdint>

#include "src/lab/test_system.h"

namespace wdmlat::lab {

struct MicrobenchResults {
  // Thread ping-pong: one direction of a signal/wake/switch round trip
  // (what lmbench's lat_ctx measures).
  double context_switch_us = 0.0;
  // Event signal (from "interrupt" context) to the waiting thread's first
  // instruction.
  double event_wake_us = 0.0;
  // KeInsertQueueDpc to the DPC routine's first instruction.
  double dpc_dispatch_us = 0.0;
  // Device interrupt assertion to ISR first instruction on the idle system.
  double interrupt_dispatch_us = 0.0;
  // Single-shot timer requested-vs-actual expiry error (dominated by clock
  // tick quantization).
  double timer_error_ms = 0.0;
  std::uint64_t iterations = 0;
};

// Run the suite on an otherwise idle system. `iterations` per primitive.
// The system's clock is reprogrammed to 1 kHz first (as the paper's tools
// do), so timer_error_ms reflects the 1 ms tick.
MicrobenchResults RunOsMicrobench(lab::TestSystem& system, int iterations = 1000);

}  // namespace wdmlat::lab

#endif  // SRC_LAB_OS_MICROBENCH_H_
