// Differential A/B perturbation runs: baseline vs fault-perturbed from the
// same seed.
//
// The paper's Figure 5 is a differential experiment — the same Windows 98 /
// office-load cell measured with and without the Plus! 98 virus scanner, the
// damage read off as the worst-case thread latency stretching from ~4 ms to
// ~40 ms. RunDifferential generalises that recipe to any FaultPlan: run the
// cell once with no injector and once with the plan, from the identical
// seed (the injector's RNG streams are derived from the plan seed, so the
// workload's entire random sequence is shared), then report per-quantile
// deltas, tail-fraction deltas, Table-3 style expected-worst-case deltas and
// a Kolmogorov-Smirnov whole-distribution statistic for each measured
// latency class.

#ifndef SRC_LAB_DIFFERENTIAL_H_
#define SRC_LAB_DIFFERENTIAL_H_

#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/lab/lab.h"

namespace wdmlat::lab {

// One latency class's baseline-vs-perturbed comparison.
struct DistributionShift {
  std::string metric;  // "thread", "dpc_interrupt", "thread_interrupt", ...

  struct QuantilePair {
    double q = 0.0;
    double baseline_ms = 0.0;
    double perturbed_ms = 0.0;
  };
  std::vector<QuantilePair> quantiles;

  struct TailPair {
    double threshold_ms = 0.0;
    double baseline_fraction = 0.0;   // FractionAtOrAbove(threshold)
    double perturbed_fraction = 0.0;
  };
  std::vector<TailPair> tails;

  // Observed maxima and Table-3 style expected hourly worst cases
  // (ExpectedMaxOfNMs at each run's own hourly sample count).
  double baseline_max_ms = 0.0;
  double perturbed_max_ms = 0.0;
  double baseline_hourly_worst_ms = 0.0;
  double perturbed_hourly_worst_ms = 0.0;

  // Two-sample KS statistic over the full distributions.
  double ks = 0.0;
};

struct DifferentialReport {
  fault::FaultPlan plan;
  LabReport baseline;
  LabReport perturbed;
  std::vector<DistributionShift> shifts;

  // Convenience: the thread-latency shift (the paper's headline metric), or
  // nullptr if absent.
  const DistributionShift* thread_shift() const;
};

// Quantiles / tail thresholds used when the caller does not override them.
std::vector<double> DefaultShiftQuantiles();   // .5 .9 .99 .999 .9999
std::vector<double> DefaultTailThresholdsMs(); // 1, 10, 100 ms

// Run the cell described by `config` twice — config.faults is ignored; the
// baseline run has no injector, the perturbed run drives `plan` — and
// compare. Both runs use config.seed.
DifferentialReport RunDifferential(const LabConfig& config, const fault::FaultPlan& plan);

// Human-readable report: one ascii table per latency class.
std::string RenderDifferentialTables(const DifferentialReport& report);

// CSV: metric,statistic,baseline,perturbed rows (quantiles in ms, tail
// fractions dimensionless, ks with an empty baseline column).
std::string DifferentialToCsv(const DifferentialReport& report);

// JSON document with top-level keys: plan, baseline, perturbed, shifts.
std::string DifferentialToJson(const DifferentialReport& report);

}  // namespace wdmlat::lab

#endif  // SRC_LAB_DIFFERENTIAL_H_
