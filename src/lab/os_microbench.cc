#include "src/lab/os_microbench.h"

#include <memory>

#include "src/kernel/kernel.h"

namespace wdmlat::lab {

namespace {
using kernel::Label;
}  // namespace

MicrobenchResults RunOsMicrobench(lab::TestSystem& system, int iterations) {
  MicrobenchResults results;
  results.iterations = static_cast<std::uint64_t>(iterations);
  kernel::Kernel& k = system.kernel();
  k.SetClockFrequency(1000.0);
  system.RunFor(0.05);  // let the new rate take effect

  // --- 1. Thread ping-pong (context switch) ---------------------------------
  {
    auto ea = std::make_shared<kernel::KEvent>();
    auto eb = std::make_shared<kernel::KEvent>();
    auto remaining = std::make_shared<int>(iterations);
    auto start = std::make_shared<sim::Cycles>(0);
    auto end = std::make_shared<sim::Cycles>(0);

    auto loop_a = std::make_shared<std::function<void()>>();
    auto loop_b = std::make_shared<std::function<void()>>();
    *loop_a = [&k, ea, eb, remaining, end, loop_a] {
      k.Wait(ea.get(), [&k, ea, eb, remaining, end, loop_a] {
        if (--*remaining <= 0) {
          *end = k.GetCycleCount();
          k.ExitThread();
          return;
        }
        k.KeSetEvent(eb.get());
        (*loop_a)();
      });
    };
    *loop_b = [&k, ea, eb, loop_b] {
      k.Wait(eb.get(), [&k, ea, eb, loop_b] {
        k.KeSetEvent(ea.get());
        (*loop_b)();
      });
    };
    k.PsCreateSystemThread("pingpong-a", 20, [loop_a] { (*loop_a)(); });
    k.PsCreateSystemThread("pingpong-b", 20, [loop_b] { (*loop_b)(); });
    system.engine().ScheduleAfter(sim::MsToCycles(1.0), [&k, ea, start] {
      *start = k.GetCycleCount();
      k.KeSetEvent(ea.get());
    });
    system.RunFor(0.001 * iterations + 1.0);
    if (*end > *start && iterations > 0) {
      results.context_switch_us = sim::CyclesToUs(*end - *start) / (2.0 * iterations);
    }
  }

  // --- 2. Event signal to thread wake ----------------------------------------
  {
    auto event = std::make_shared<kernel::KEvent>();
    auto signaled_at = std::make_shared<sim::Cycles>(0);
    auto total = std::make_shared<sim::Cycles>(0);
    auto woken = std::make_shared<int>(0);
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&k, event, signaled_at, total, woken, loop] {
      k.Wait(event.get(), [&k, signaled_at, total, woken, loop] {
        *total += k.GetCycleCount() - *signaled_at;
        ++*woken;
        (*loop)();
      });
    };
    k.PsCreateSystemThread("wake-probe", 28, [loop] { (*loop)(); });
    for (int i = 0; i < iterations; ++i) {
      system.engine().ScheduleAfter(sim::UsToCycles(200.0 * (i + 1)),
                                    [&k, event, signaled_at] {
                                      *signaled_at = k.GetCycleCount();
                                      k.KeSetEvent(event.get());
                                    });
    }
    system.RunFor(200e-6 * iterations + 0.5);
    if (*woken > 0) {
      results.event_wake_us = sim::CyclesToUs(*total) / *woken;
    }
  }

  // --- 3. DPC dispatch ---------------------------------------------------------
  {
    auto inserted_at = std::make_shared<sim::Cycles>(0);
    auto total = std::make_shared<sim::Cycles>(0);
    auto runs = std::make_shared<int>(0);
    auto dpc = std::make_shared<kernel::KDpc>(
        [&k, inserted_at, total, runs] {
          *total += k.GetCycleCount() - *inserted_at;
          ++*runs;
        },
        sim::DurationDist::Constant(1.0), Label{"UBENCH", "_dpc"});
    for (int i = 0; i < iterations; ++i) {
      system.engine().ScheduleAfter(sim::UsToCycles(150.0 * (i + 1)),
                                    [&k, dpc, inserted_at] {
                                      *inserted_at = k.GetCycleCount();
                                      k.KeInsertQueueDpc(dpc.get());
                                    });
    }
    system.RunFor(150e-6 * iterations + 0.5);
    if (*runs > 0) {
      results.dpc_dispatch_us = sim::CyclesToUs(*total) / *runs;
    }
  }

  // --- 4. Interrupt dispatch ------------------------------------------------------
  {
    const int line = system.kernel().pic().ConnectLine("UBENCH", static_cast<kernel::Irql>(11));
    k.IoConnectInterrupt(line, static_cast<kernel::Irql>(11), Label{"UBENCH", "_isr"},
                         [] { return sim::UsToCycles(1.0); });
    auto total = std::make_shared<sim::Cycles>(0);
    auto fires = std::make_shared<int>(0);
    auto previous = k.dispatcher().on_isr_entry;
    k.dispatcher().on_isr_entry = [line, total, fires, previous](int l, sim::Cycles a,
                                                                 sim::Cycles e) {
      if (l == line) {
        *total += e - a;
        ++*fires;
      }
      if (previous) {
        previous(l, a, e);
      }
    };
    for (int i = 0; i < iterations; ++i) {
      system.engine().ScheduleAfter(sim::UsToCycles(170.0 * (i + 1)),
                                    [&system, line] { system.kernel().pic().Assert(line); });
    }
    system.RunFor(170e-6 * iterations + 0.5);
    k.dispatcher().on_isr_entry = previous;
    if (*fires > 0) {
      results.interrupt_dispatch_us = sim::CyclesToUs(*total) / *fires;
    }
  }

  // --- 5. Timer expiry error -------------------------------------------------------
  {
    auto timer = std::make_shared<kernel::KTimer>();
    auto due = std::make_shared<sim::Cycles>(0);
    auto total = std::make_shared<sim::Cycles>(0);
    auto fires = std::make_shared<int>(0);
    auto dpc = std::make_shared<kernel::KDpc>(
        [&k, due, total, fires] {
          *total += k.GetCycleCount() - *due;
          ++*fires;
        },
        sim::DurationDist::Constant(1.0), Label{"UBENCH", "_timer"});
    const int timer_iterations = iterations / 4 + 1;
    for (int i = 0; i < timer_iterations; ++i) {
      // Odd spacing so the due times sweep the tick phase uniformly.
      system.engine().ScheduleAfter(sim::UsToCycles(4170.0 * (i + 1)),
                                    [&k, timer, dpc, due] {
                                      *due = k.GetCycleCount() + sim::MsToCycles(2.0);
                                      k.KeSetTimerMs(timer.get(), 2.0, dpc.get());
                                    });
    }
    system.RunFor(4170e-6 * timer_iterations + 0.5);
    if (*fires > 0) {
      results.timer_error_ms = sim::CyclesToMs(*total) / *fires;
    }
  }

  return results;
}

}  // namespace wdmlat::lab
