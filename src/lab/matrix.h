// ExperimentMatrix: the paper's measurement grid, run in parallel.
//
// The paper's exhibits are built from a matrix of experiment cells —
// {NT, 98} × {office, workstation, games, web} × {priority 24, 28} × seeds —
// and each cell is an independent single-threaded simulation. This runner
// expands an {os × workload × priority × trials} grid into LabConfigs with
// SplitMix64-derived per-cell seeds, fans the cells across a
// runtime::ThreadPool, and merges the per-trial LabReports of each
// (os, workload, priority) group into pooled distributions.
//
// Determinism contract (enforced by tests/matrix_determinism_test.cc): for a
// fixed master seed, the merged histograms are bit-identical for jobs=1 and
// jobs=N. Two mechanisms guarantee it:
//   1. A cell's seed depends only on its grid coordinates and the master
//      seed — never on enumeration or completion order.
//   2. Every cell writes its report into a pre-sized slot, and slots are
//      merged sequentially in grid order after all cells finish, so even the
//      floating-point sums accumulate in a jobs-independent order.

#ifndef SRC_LAB_MATRIX_H_
#define SRC_LAB_MATRIX_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/lab/lab.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/metrics.h"
#include "src/runtime/supervisor.h"

namespace wdmlat::lab {

class ExperimentMatrix;

struct MatrixSpec {
  std::vector<kernel::KernelProfile> oses;
  std::vector<workload::StressProfile> workloads;
  // Measured RT thread priorities (the paper uses 28 "High" and 24 "Med.").
  std::vector<int> priorities;
  // Independent trials per (os, workload, priority) group, each with its own
  // derived seed; trial histograms merge into the group's pooled result.
  int trials = 1;
  double stress_minutes = 10.0;
  double warmup_seconds = 5.0;
  std::uint64_t master_seed = 1999;
  TestSystemOptions options;
  drivers::LatencyDriver::Config driver;  // thread_priority is overridden
  // Optional fault plan (borrowed), expanded into every cell's LabConfig;
  // each cell's injector derives its streams from (plan.seed, cell seed), so
  // cells stay independent and jobs-invariant.
  const fault::FaultPlan* faults = nullptr;

  // --- Observability (expanded into each cell's ObsOptions) -----------------
  // Collect per-cell MetricsRegistries and merge them — grid order, so the
  // merged registry is jobs-independent — into MatrixResult::metrics.
  bool collect_metrics = false;
  // >0 (and collect_metrics): per-cell queue-depth sampling period.
  double queue_sample_ms = 0.0;
  // >0: arm every cell's episode flight recorder at this threshold; episode
  // tallies land in the merged groups.
  double episode_threshold_us = 0.0;
  std::size_t max_episodes = 64;
  // Attach a per-cell obs::LatencyAnatomy (needs episode_threshold_us > 0):
  // per-episode stage decompositions stay in the per-cell LabReports, and
  // stage-cycle totals pool into MergedCell::anatomy_stage_cycles.
  bool anatomy = false;
  // Stream every cell's thread-latency samples into a per-cell
  // stats::QuantileSketch; per-trial sketches merge — grid order, so the
  // merged sketch is jobs-independent — into MergedCell::thread_sketch.
  bool sketch = false;
  // Receives the dispatcher trace of the FIRST cell only: a sink shared by
  // concurrently-running cells would interleave their tracks meaninglessly,
  // so the sim-side tracks show one representative cell while the host-side
  // tracks (lab::AppendHostTrace) cover the whole run.
  kernel::TraceSink* trace_sink = nullptr;

  std::size_t cell_count() const {
    return oses.size() * workloads.size() * priorities.size() *
           static_cast<std::size_t>(trials < 1 ? 1 : trials);
  }
  std::size_t group_count() const {
    return oses.size() * workloads.size() * priorities.size();
  }
};

// The paper's full Figure-4 grid: {NT 4.0, Windows 98} × the four stress
// loads × priorities {28, 24}, one trial per cell.
MatrixSpec PaperMatrix();

// One expanded cell, in grid-enumeration order (os-major, then workload,
// then priority, then trial).
struct MatrixCell {
  std::size_t index = 0;  // linear index in enumeration order
  std::size_t os_index = 0;
  std::size_t workload_index = 0;
  std::size_t priority_index = 0;
  int trial = 0;
  std::uint64_t seed = 0;  // = CellSeed(master, coordinates)
  LabConfig config;
};

// A merged (os, workload, priority) group: the per-trial LabReports combined
// bucket-for-bucket via LatencyHistogram::Merge, sampling counters pooled.
struct MergedCell {
  std::string os_name;
  std::string workload_name;
  int thread_priority = 0;
  int trials = 0;

  stats::LatencyHistogram dpc_interrupt;
  stats::LatencyHistogram thread;
  stats::LatencyHistogram thread_interrupt;
  stats::LatencyHistogram interrupt;
  stats::LatencyHistogram isr_to_dpc;
  stats::LatencyHistogram true_pit_interrupt_latency;
  bool has_interrupt_latency = false;

  stats::SampleCounters counters;
  stats::UsageModel usage;

  // Flight-recorder tallies pooled across trials (zero unless
  // MatrixSpec::episode_threshold_us was set).
  std::uint64_t episodes = 0;
  std::uint64_t episodes_attributed = 0;
  std::uint64_t episode_module_matches = 0;

  // Streaming thread-latency sketch pooled across trials in grid order
  // (zero count unless MatrixSpec::sketch was set).
  stats::QuantileSketch thread_sketch;

  // Anatomy tallies pooled across trials (zero unless MatrixSpec::anatomy):
  // exact critical-path cycles by stage, summed over decomposed episodes.
  std::uint64_t anatomy_episodes = 0;
  std::array<sim::Cycles, obs::kAnatomyStageCount> anatomy_stage_cycles{};

  // Injected-fault activations pooled across trials (zero without a plan).
  std::uint64_t fault_activations = 0;

  std::uint64_t samples() const { return counters.samples; }
  double samples_per_hour() const { return counters.SamplesPerHour(); }
};

// Final disposition of one cell after a (possibly supervised, possibly
// resumed) run.
enum class CellStatus : std::uint8_t {
  kPending,   // never reached (only seen mid-run or after an aborted run)
  kOk,        // executed this run and completed
  kRestored,  // restored bit-exactly from a verified journal artifact
  kFailed,    // executed and failed; see MatrixResult::failures
  kSkipped,   // not launched because MatrixRunOptions::max_cells was hit
};
const char* CellStatusName(CellStatus status);

// Knobs for the supervised runner (ExperimentMatrix::Run(MatrixRunOptions)).
// Default-constructed options reproduce the legacy Run(jobs) behaviour:
// no watchdog, no audits, no journal, every failure propagates.
struct MatrixRunOptions {
  int jobs = 1;
  // Per-cell exception barrier + watchdog + retry policy. With
  // cell_timeout_ms == 0 the watchdog stays disarmed but the barrier still
  // converts throwing cells into structured failures.
  runtime::SupervisorOptions supervision;
  // When false, a cell exception propagates out of Run (legacy behaviour);
  // when true, it is captured as a CellFailure and the other cells continue.
  bool isolate_failures = false;
  // >0: run an invariant-audit pass inside every cell at this virtual-second
  // cadence (plus once at the end of the measurement phase).
  double audit_every_s = 0.0;
  // Fixtures for tests and ci/resume_smoke.sh (negative = disabled):
  // inject one audit violation into this cell / throw from this cell.
  std::ptrdiff_t audit_fail_cell = -1;
  std::ptrdiff_t throw_cell = -1;
  // >0: launch at most this many cells this run, marking the rest kSkipped —
  // the controlled "interrupt" used by the resume-determinism tests.
  std::size_t max_cells = 0;
  // Non-empty: write a fresh journal (plus per-cell artifacts) at this path.
  std::string journal_path;
  // Non-empty: resume from this journal — restore verified completed cells,
  // re-run missing/failed/corrupt ones, and append new entries to it.
  std::string resume_path;
  // Progress hooks, serialized under the runner's lock (completion order).
  std::function<void(const MatrixCell&, CellStatus)> on_cell_done;
  std::function<void(const runtime::CellFailure&)> on_cell_failed;
};

struct MatrixResult {
  // Per-cell reports, parallel to ExperimentMatrix::cells().
  std::vector<LabReport> reports;
  // One merged group per (os, workload, priority), in grid order.
  std::vector<MergedCell> merged;

  // Wall-clock accounting for the speedup report: elapsed time of the whole
  // run versus the summed per-cell times (≈ what a serial run would cost).
  double wall_seconds = 0.0;
  double total_cell_seconds = 0.0;
  double Speedup() const {
    return wall_seconds > 0.0 ? total_cell_seconds / wall_seconds : 1.0;
  }

  // Merged per-cell registries (grid order) plus host-side "matrix.*"
  // metrics; empty unless MatrixSpec::collect_metrics was set.
  obs::MetricsRegistry metrics;

  // Host-side schedule of each cell, parallel to ExperimentMatrix::cells():
  // which pool worker ran it and when (seconds since the run started).
  struct CellTiming {
    int worker = 0;
    double start_s = 0.0;
    double end_s = 0.0;
  };
  std::vector<CellTiming> timings;
  int workers_observed = 0;

  // Pool utilization: summed cell time over (wall time × workers).
  double Utilization() const {
    const double capacity = wall_seconds * static_cast<double>(workers_observed);
    return capacity > 0.0 ? total_cell_seconds / capacity : 0.0;
  }

  // --- Supervision outcome (populated by Run(MatrixRunOptions)) -------------
  // Per-cell dispositions, parallel to ExperimentMatrix::cells(). The legacy
  // Run(jobs) fills every slot with kOk.
  std::vector<CellStatus> statuses;
  // Structured failures of every kFailed cell (completion order).
  std::vector<runtime::CellFailure> failures;
  std::size_t cells_executed = 0;  // ran this run (kOk + kFailed)
  std::size_t cells_restored = 0;  // restored from the resume journal
  std::size_t cells_skipped = 0;   // unlaunched due to max_cells
  std::uint64_t retries = 0;       // host-transient retries across all cells
  // Non-fatal resume diagnostics: stale checksums, unreadable artifacts —
  // each one names a cell that was re-run instead of restored.
  std::vector<std::string> warnings;
  // Post-merge conservation audit: any group whose merged histogram counts
  // differ from the sum of its merged trials' counts. Always empty unless
  // the merge arithmetic itself is broken.
  std::vector<std::string> merge_violations;
  // Set when the run aborted before executing cells (unreadable or
  // mismatched resume journal, unwritable journal path).
  std::string error;

  // Every cell is kOk or kRestored (the merged exhibits cover the full grid).
  bool complete() const;
};

// Append the host-side view of a finished matrix run to `writer`: one track
// per pool worker under ChromeTraceWriter::kHostPid, one complete slice per
// cell named "os/workload/prio" with its seed and wall time as args.
void AppendHostTrace(obs::ChromeTraceWriter& writer, const ExperimentMatrix& matrix,
                     const MatrixResult& result);

class ExperimentMatrix {
 public:
  explicit ExperimentMatrix(MatrixSpec spec);

  const MatrixSpec& spec() const { return spec_; }
  const std::vector<MatrixCell>& cells() const { return cells_; }

  // Deterministic per-cell seed: a SplitMix64 hash chain over (master seed,
  // grid coordinates). Depends only on the coordinates, so adding a trial or
  // reordering the run never reseeds existing cells.
  static std::uint64_t CellSeed(std::uint64_t master_seed, std::size_t os_index,
                                std::size_t workload_index, int priority, int trial);

  // Run every cell on `jobs` worker threads (jobs <= 1 runs inline) and merge
  // trial groups. `on_cell_done`, if set, is invoked once per finished cell,
  // serialized under a lock (completion order, not grid order). Thin wrapper
  // over the supervised overload with default options.
  MatrixResult Run(int jobs,
                   const std::function<void(const MatrixCell&)>& on_cell_done = nullptr) const;

  // Supervised run: per-cell watchdog/exception-barrier/retry, optional
  // invariant audits, optional checkpoint journal and resume. Cells that
  // fail under isolate_failures are recorded in MatrixResult::failures and
  // excluded from the merge; everything that merges is bit-identical to the
  // same cells merged by a fresh unsupervised run (same grid order, same
  // per-cell bits — supervision hooks are pure observers of the simulation).
  MatrixResult Run(const MatrixRunOptions& options) const;

  // Index of a group in MatrixResult::merged by grid coordinates.
  std::size_t GroupIndex(std::size_t os_index, std::size_t workload_index,
                         std::size_t priority_index) const;

 private:
  MatrixSpec spec_;
  std::vector<MatrixCell> cells_;
};

}  // namespace wdmlat::lab

#endif  // SRC_LAB_MATRIX_H_
