// lab::Fleet — population-scale simulation (ROADMAP item 2).
//
// A FleetSpec describes cohorts of simulated machines drawn from priors:
// hardware speeds (log-uniform MHz, applied by scaling the kernel profile's
// cost distributions — the simulated cycle rate stays pinned at 300 MHz),
// workload mixes (weighted sample), an OS personality, and a fault-plan
// prior. The spec expands into `count` cells per cohort; every per-member
// draw derives from a SplitMix64 hash chain over (master seed, cohort,
// member), so a cell's bits depend only on its coordinates — never on shard
// count, job count, or execution order.
//
// Execution is sharded: cell i belongs to shard i % shards, and
// RunFleetShard runs one shard's cells (optionally in parallel) over the
// supervised path, writing one compact JSONL record per cell — thread + DPC
// histograms, optional sketch, anatomy stage totals, counters — in global
// cell-index order (a bounded reorder buffer absorbs out-of-order
// completions). Workers resume for free: verified records already in the
// output file are kept and only missing cells re-run.
//
// MergeFleetShards then folds the shard files with a streaming grid-order
// merge: records are consumed strictly in global index order (round-robin
// across the per-shard streams) and folded into per-cohort accumulators,
// then discarded — peak RSS is O(cohorts + open shard streams), not
// O(cells), and the fold order is the same whatever `--shards`/`--jobs`
// produced the files, so the merged report is bit-identical (fleet
// determinism tests).

#ifndef SRC_LAB_FLEET_H_
#define SRC_LAB_FLEET_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/fault/fault.h"
#include "src/lab/lab.h"
#include "src/obs/anatomy.h"
#include "src/runtime/supervisor.h"
#include "src/stats/histogram.h"
#include "src/stats/quantile_sketch.h"
#include "src/stats/usage_model.h"

namespace wdmlat::lab {

// One population cohort: `count` members drawn from shared priors.
struct FleetCohort {
  std::string name;
  // OS personality: "nt4", "win98", "w2kbeta", or an SMP variant —
  // "nt_smp2"/"nt_smp4" (DPC-pinned) / "nt_smp2_migrate"/"nt_smp4_migrate"
  // (DPC-migrating, round-robin IRQs, work stealing).
  std::string os = "win98";
  // Workload mix: each member samples one entry ("office", "workstation",
  // "games", "web", "idle"), weighted by workload_weights when non-empty
  // (same length, positive), uniformly otherwise.
  std::vector<std::string> workloads = {"office"};
  std::vector<double> workload_weights;
  int priority = 28;
  std::uint64_t count = 1;
  double stress_minutes = 0.05;
  double warmup_seconds = 1.0;
  // Sampling-timer rate the latency driver reprograms the PIT to (the
  // paper uses 1 kHz). Screening populations crank this up: a 4 kHz PIT
  // takes 4x the samples per virtual second — same mechanism, shorter
  // cells, better pooled tails. The driver's ARBITRARY_DELAY scales with
  // the tick so it stays one tick long.
  double pit_hz = 1000.0;
  // Hardware-speed prior: each member's CPU clock is sampled log-uniformly
  // in [speed_mhz_lo, speed_mhz_hi]; kernel cost distributions scale by
  // 300/speed (sim::DurationDist::Scaled).
  double speed_mhz_lo = 300.0;
  double speed_mhz_hi = 300.0;
  // Fault prior: each member runs this built-in fault plan
  // (fault::FindBuiltinPlan name; empty = never) with probability
  // fault_prob.
  std::string fault_plan;
  double fault_prob = 0.0;
  // Stream every member's thread-latency samples into a per-cell
  // QuantileSketch (exact deep tails, but the dominant record-size term).
  bool sketch = false;
  // >0: arm the flight recorder + anatomy sink at this threshold; exact
  // per-stage cycle totals pool into the cohort report.
  double episode_threshold_us = 0.0;
  TestSystemOptions options;
};

struct FleetSpec {
  std::string name = "fleet";
  std::uint64_t master_seed = 1999;
  std::vector<FleetCohort> cohorts;

  std::uint64_t cell_count() const {
    std::uint64_t total = 0;
    for (const FleetCohort& cohort : cohorts) {
      total += cohort.count;
    }
    return total;
  }
};

// Parse a population-spec JSON document (schema in EXPERIMENTS.md "fleet
// recipe"). Unknown OS/workload/fault-plan names, bad weights and empty
// cohorts fail here, not mid-run.
bool FleetSpecFromJson(std::string_view text, FleetSpec* spec, std::string* error);
// Read and parse a spec file.
bool LoadFleetSpec(const std::string& path, FleetSpec* spec, std::string* error);

// Stable FNV-1a fingerprint over everything that determines cell bits:
// master seed, cohort order, names, counts, priors, durations. Recorded in
// shard records' companion report and re-checked on merge.
std::uint64_t FleetFingerprint(const FleetSpec& spec);

// Per-member seed: SplitMix64 hash chain over (master seed, cohort index,
// member index). Shard- and jobs-independent by construction.
std::uint64_t FleetCellSeed(std::uint64_t master_seed, std::size_t cohort,
                            std::uint64_t member);

// One materialized member: coordinates, seed, and the per-member draws
// (speed, workload, fault activation) sampled from a side stream derived
// from the seed — never from the simulation's own RNG.
struct FleetCell {
  std::uint64_t index = 0;  // global cell index (cohort-major)
  std::size_t cohort = 0;
  std::uint64_t member = 0;
  std::uint64_t seed = 0;
  double speed_mhz = 300.0;
  std::size_t workload_index = 0;
  bool fault_active = false;
};

class Fleet {
 public:
  // Validates the spec the same way FleetSpecFromJson does; `error()` is
  // non-empty (and the fleet unusable) on a bad spec.
  explicit Fleet(FleetSpec spec);

  const FleetSpec& spec() const { return spec_; }
  const std::string& error() const { return error_; }
  std::uint64_t cell_count() const { return cell_count_; }
  std::uint64_t fingerprint() const { return fingerprint_; }

  // Materialize cell `index` (coordinates + per-member draws).
  FleetCell CellAt(std::uint64_t index) const;
  // Expand a cell into its LabConfig: OS profile scaled for the sampled
  // speed, sampled workload, cohort knobs, fault plan when active.
  LabConfig CellConfig(const FleetCell& cell) const;

 private:
  FleetSpec spec_;
  std::string error_;
  std::uint64_t cell_count_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::vector<std::uint64_t> cohort_begin_;  // prefix sums over cohort counts
  std::vector<fault::FaultPlan> plans_;      // resolved built-in plan per cohort
};

// Compact per-cell result: exactly the accumulator inputs, a fraction of a
// full ReportToJson artifact.
struct FleetCellRecord {
  std::uint64_t index = 0;
  std::size_t cohort = 0;
  std::uint64_t seed = 0;
  std::uint64_t samples = 0;
  double stress_hours = 0.0;
  double speed_mhz = 300.0;
  std::uint64_t fault_activations = 0;
  std::uint64_t anatomy_episodes = 0;
  std::array<sim::Cycles, obs::kAnatomyStageCount> anatomy_stage_cycles{};
  stats::LatencyHistogram thread;
  stats::LatencyHistogram dpc_interrupt;
  stats::QuantileSketch thread_sketch;
};

// One JSONL line: {"cell", "seed", "checksum", "payload"} where payload is
// the record body (report_io dialect: hexfloats + decimal u64s) and checksum
// is Fnv1a64 over the payload text, so a torn or bit-rotted line fails
// loudly on resume and on merge.
std::string FleetRecordToLine(const FleetCellRecord& record);
bool FleetRecordFromLine(std::string_view line, FleetCellRecord* record, std::string* error);

// Reuses one warmed TestSystem across cells: the first Run constructs it,
// later Runs TestSystem::Reset() it (keeping the engine's bucket/slab
// capacity). Results are bit-identical to RunLatencyExperiment(config)
// (golden-checksum test in tests/fleet_test.cc).
class WarmCellRunner {
 public:
  WarmCellRunner();
  ~WarmCellRunner();

  LabReport Run(const LabConfig& config);

  std::uint64_t constructions() const { return constructions_; }
  std::uint64_t resets() const { return resets_; }

 private:
  std::unique_ptr<TestSystem> system_;
  std::uint64_t constructions_ = 0;
  std::uint64_t resets_ = 0;
};

// Canonical shard-file path: <dir>/shard_<k>_of_<n>.jsonl.
std::string FleetShardPath(const std::string& dir, std::size_t shard, std::size_t shards);

struct FleetShardOptions {
  std::size_t shard = 0;
  std::size_t shards = 1;
  int jobs = 1;
  // Shard record file (required). An existing file resumes: records that
  // verify (seed + checksum) are kept, only missing cells run.
  std::string out_path;
  // Cell window [cell_lo, cell_hi): only stride cells inside it run
  // (cell_hi == 0 means cell_count). The supervisor's quarantine bisection
  // narrows this to isolate a poisoned cell; records outside the window
  // that already verify are preserved, so probe work accumulates.
  std::uint64_t cell_lo = 0;
  std::uint64_t cell_hi = 0;
  // Quarantined cells (sorted ascending): never executed, excluded from
  // cells_total. A verified record for one is still preserved.
  std::vector<std::uint64_t> skip_cells;
  // Test/CI fixture: abort() the worker when this cell executes (simulates
  // a poisoned cell that takes the process down). < 0 disables.
  std::int64_t poison_cell = -1;
  // Host-chaos hooks (lab::HostChaos): raise(SIGKILL) after this many
  // freshly executed cells (0 = never), and/or sleep before starting.
  std::uint64_t chaos_kill_after_cells = 0;
  double chaos_delay_ms = 0.0;
  // Per-cell exception barrier / watchdog / retry.
  runtime::SupervisorOptions supervision;
  // Progress hook, serialized under the writer lock (completion order).
  std::function<void(const FleetCell&, bool ok)> on_cell_done;
};

struct FleetShardResult {
  std::uint64_t cells_total = 0;     // cells belonging to this shard
  std::uint64_t cells_executed = 0;  // ran this invocation
  std::uint64_t cells_restored = 0;  // verified records reused from out_path
  std::vector<runtime::CellFailure> failures;
  std::vector<std::string> warnings;
  double wall_seconds = 0.0;
  std::string error;  // fatal (spec/I-O); empty on success

  bool ok() const { return error.empty() && failures.empty(); }
};

// Run shard `shard` of `shards` (cells with index % shards == shard), in
// global-index order per the file contract above. Fresh runs append + flush
// per record (a killed worker loses at most its in-flight cells); resumed
// partial files are stream-rewritten to a temp file and atomically renamed.
FleetShardResult RunFleetShard(const Fleet& fleet, const FleetShardOptions& options);

// One quarantined cell, as persisted in the manifest and reported in the
// merged fleet.json coverage section. `taxonomy` is a runtime::FailureKind
// name when the supervisor isolated the cell (exception/timeout), or a
// merge-detected reason ("missing_record", "corrupt_record",
// "checksum_mismatch", "seed_mismatch") when degradation quarantined it.
struct FleetQuarantineEntry {
  std::uint64_t cell = 0;
  std::uint64_t seed = 0;
  std::size_t cohort = 0;  // filled by the merge; not persisted
  std::string taxonomy;
  int attempts = 1;
};

// Quarantine manifest: one JSONL line per cell —
// {"cell": "N", "seed": "N", "taxonomy": "...", "attempts": N}.
bool LoadFleetQuarantine(const std::string& path,
                         std::vector<FleetQuarantineEntry>* entries,
                         std::string* error);
bool SaveFleetQuarantine(const std::string& path,
                         const std::vector<FleetQuarantineEntry>& entries,
                         std::string* error);

// Merge a speculative suffix file into the main shard file: verified records
// from both, main winning duplicates, written ascending via tmp + rename.
// Tolerates a missing or torn main file (a killed straggler). The result is
// a normal partial shard file a completion run can resume from.
bool StitchShardFiles(const Fleet& fleet, std::size_t shard, std::size_t shards,
                      const std::string& main_path, const std::string& extra_path,
                      std::string* error);

// Per-cohort accumulators — the O(cohorts) working set of the merge.
struct FleetCohortReport {
  std::string name;
  std::string os;
  int priority = 0;
  std::uint64_t planned = 0;      // cells the spec promised this cohort
  std::uint64_t cells = 0;        // cells actually folded (completed)
  std::uint64_t quarantined = 0;  // planned - cells, by taxonomy in the report
  stats::SampleCounters counters;
  stats::LatencyHistogram thread;
  stats::LatencyHistogram dpc_interrupt;
  stats::QuantileSketch thread_sketch;
  std::uint64_t fault_cells = 0;  // cells whose fault plan activated >= once
  std::uint64_t fault_activations = 0;
  std::uint64_t anatomy_episodes = 0;
  std::array<sim::Cycles, obs::kAnatomyStageCount> anatomy_stage_cycles{};
  double speed_mhz_sum = 0.0;
  double speed_mhz_min = 0.0;
  double speed_mhz_max = 0.0;
};

struct FleetReport {
  std::string name;
  std::uint64_t fingerprint = 0;
  std::uint64_t cells = 0;             // planned population size
  std::uint64_t cells_completed = 0;   // records folded
  std::uint64_t cells_quarantined = 0; // explicit coverage gap, never silent
  std::vector<FleetQuarantineEntry> quarantine;  // cell-ascending
  // Degradation diagnostics (dropped lines, stale records). Printed by the
  // CLI, deliberately NOT serialized into fleet.json.
  std::vector<std::string> merge_warnings;
  std::vector<FleetCohortReport> cohorts;
};

struct FleetMergeOptions {
  // Cells known-missing before the merge starts (the supervisor's quarantine
  // manifest): expected gaps, skipped without complaint in either mode.
  std::vector<FleetQuarantineEntry> quarantined;
  // Degraded mode: a corrupt / duplicate / missing record quarantines its
  // cell (recorded in the report's coverage manifest) instead of failing the
  // merge. Strict mode (default) fails on the first unexpected anomaly.
  bool allow_degraded = false;
};

// Streaming grid-order merge: consume the shard record streams strictly in
// global cell-index order, folding each record into its cohort accumulator
// and discarding it. `shard_paths[k]` must be shard k of shard_paths.size().
// Fails (false + error) on a missing/torn/mismatched record — an incomplete
// shard must be re-run, never silently skipped.
bool MergeFleetShards(const Fleet& fleet, const std::vector<std::string>& shard_paths,
                      FleetReport* report, std::string* error);

// Same merge with an expected-quarantine list and optional graceful
// degradation; the report's coverage manifest (cells planned / completed /
// quarantined, per cohort) makes any gap loud.
bool MergeFleetShards(const Fleet& fleet, const std::vector<std::string>& shard_paths,
                      const FleetMergeOptions& merge_options, FleetReport* report,
                      std::string* error);

// Serialize the merged report: exact histogram/sketch states in the
// report_io dialect plus human-readable per-cohort quantiles. Deterministic
// bytes — the smoke test checksums this.
std::string FleetReportToJson(const FleetReport& report);

}  // namespace wdmlat::lab

#endif  // SRC_LAB_FLEET_H_
