// RunJournal: the append-only checkpoint log behind `wdmlat_run --resume`.
//
// A supervised matrix run writes one JSONL line per finished cell —
// completion order, flushed per line, so an interrupted process loses at
// most the cell it was inside — plus a header line binding the journal to
// the exact matrix it describes (a fingerprint over the grid, seeds and
// durations). Each successful cell also gets a lossless artifact file
// (lab::ReportToJson) under "<journal>.cells/", and the journal records the
// artifact's FNV-1a checksum so resume can detect torn or stale files.
//
// Resume contract: a journal entry is trusted only when (a) the header
// fingerprint matches the spec being run, (b) the entry's seed matches the
// cell's derived seed, and (c) the artifact re-hashes to the recorded
// checksum and parses back bit-exactly. Anything less re-runs the cell —
// a resume must never be able to merge different bits than a fresh run.

#ifndef SRC_LAB_JOURNAL_H_
#define SRC_LAB_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/lab/matrix.h"

namespace wdmlat::lab {

// Stable hash of everything that determines a matrix's cells and their
// bits: master seed, grid axes (profile/workload names, priorities),
// trials, durations, fault plan and episode knobs. Two specs with equal
// fingerprints produce identical cell seeds and identical per-cell reports.
std::uint64_t MatrixFingerprint(const MatrixSpec& spec);

// One journal line (after the header).
struct JournalEntry {
  std::size_t cell = 0;        // linear grid index
  std::uint64_t seed = 0;      // the cell's derived seed, for re-verification
  std::string status;          // "ok" or "failed"
  // status == "ok":
  std::uint64_t checksum = 0;  // Fnv1a64 of the artifact file's bytes
  std::string artifact;        // path to the ReportToJson artifact
  std::uint64_t samples = 0;
  // status == "failed":
  std::string taxonomy;        // runtime::FailureKindName of the final failure
  std::string message;         // first line of the failure message
  int attempts = 1;
};

struct JournalContents {
  std::uint64_t fingerprint = 0;
  std::uint64_t master_seed = 0;
  std::size_t cell_count = 0;
  std::vector<JournalEntry> entries;  // document order (= completion order)
};

// Read and validate an existing journal. Returns false (and sets `error`)
// on I/O failure, a malformed header or line, or — when `spec` is non-null —
// a fingerprint mismatch against the spec being resumed.
bool LoadJournal(const std::string& path, const MatrixSpec* spec, JournalContents* out,
                 std::string* error);

class RunJournal {
 public:
  RunJournal() = default;
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  // Start a fresh journal at `path` (truncating any previous file) and write
  // the header line. Creates the "<path>.cells" artifact directory.
  bool Create(const std::string& path, const MatrixSpec& spec, std::string* error);

  // Reopen an existing journal for appending; the caller has already
  // validated its header via LoadJournal.
  bool OpenAppend(const std::string& path, std::string* error);

  // Append one line and flush, so a kill after this call never loses it.
  bool Append(const JournalEntry& entry, std::string* error);

  bool is_open() const { return out_.is_open(); }
  const std::string& path() const { return path_; }

  // Artifact locations, derived from the journal path so a journal and its
  // artifacts move together.
  std::string CellsDir() const;
  std::string ArtifactPath(std::size_t cell) const;

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace wdmlat::lab

#endif  // SRC_LAB_JOURNAL_H_
