#include "src/lab/host_chaos.h"

#include "src/sim/rng.h"

namespace wdmlat::lab {

runtime::FleetChaosPlan HostChaos::PlanFor(std::size_t shard, int attempt) const {
  runtime::FleetChaosPlan plan;
  if (attempt > kMaxChaosAttempts) {
    return plan;  // clean: the supervisor's retries always converge
  }
  // Coordinate hash chain, like FleetCellSeed: the plan depends only on
  // (seed, shard, attempt), never on timing or interleaving.
  std::uint64_t state = seed_;
  sim::SplitMix64(state);
  state ^= 0x686f7374636f73ull;  // "hostcos" domain tag
  sim::SplitMix64(state);
  state ^= static_cast<std::uint64_t>(shard);
  sim::SplitMix64(state);
  state ^= static_cast<std::uint64_t>(attempt);
  const std::uint64_t h = sim::SplitMix64(state);

  // Eight equally likely actions: 2x plain kill, kill+truncate, kill+bitflip,
  // 2x delay, 2x clean. Sabotage always rides a kill because the supervisor
  // only tears files after a failed attempt — a cleanly exited worker's file
  // is never corrupted (real crashes tear mid-write, not post-hoc).
  switch (h % 8) {
    case 0:
    case 1:
      plan.kill_after_cells = 1 + (h >> 8) % 24;
      break;
    case 2:
      plan.kill_after_cells = 1 + (h >> 8) % 24;
      plan.sabotage = runtime::FleetChaosPlan::Sabotage::kTruncate;
      plan.sabotage_param = h >> 16;
      break;
    case 3:
      plan.kill_after_cells = 1 + (h >> 8) % 24;
      plan.sabotage = runtime::FleetChaosPlan::Sabotage::kBitFlip;
      plan.sabotage_param = h >> 16;
      break;
    case 4:
    case 5:
      plan.delay_ms = 40.0 + static_cast<double>((h >> 8) % 400);
      break;
    default:
      break;  // clean
  }
  return plan;
}

}  // namespace wdmlat::lab
