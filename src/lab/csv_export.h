// CSV export of experiment results for external plotting (gnuplot,
// matplotlib, a spreadsheet). One file per distribution, plus a summary.

#ifndef SRC_LAB_CSV_EXPORT_H_
#define SRC_LAB_CSV_EXPORT_H_

#include <string>

#include "src/lab/lab.h"

namespace wdmlat::lab {

// Write the report's distributions into `directory` (created if needed):
//   <prefix>_dpc_interrupt.csv, <prefix>_thread.csv,
//   <prefix>_thread_interrupt.csv, <prefix>_interrupt.csv (98 only),
//   <prefix>_isr_to_dpc.csv (98 only), <prefix>_summary.csv
// Each histogram CSV has bucket_hi_us,count rows; the summary CSV has one
// row per distribution with count/mean/quantiles/max in milliseconds.
// Returns the number of files written; throws std::runtime_error on I/O
// failure.
int WriteReportCsv(const LabReport& report, const std::string& directory,
                   const std::string& prefix);

// A filesystem-safe prefix derived from the report's cell identity, e.g.
// "windows_98_3d_games_p28".
std::string DefaultCsvPrefix(const LabReport& report);

}  // namespace wdmlat::lab

#endif  // SRC_LAB_CSV_EXPORT_H_
