#include "src/lab/test_system.h"

#include <utility>

namespace wdmlat::lab {

using kernel::Irql;

TestSystem::TestSystem(kernel::KernelProfile os, std::uint64_t seed, TestSystemOptions options)
    : rng_(seed) {
  Build(std::move(os), options);
}

void TestSystem::Reset(kernel::KernelProfile os, std::uint64_t seed,
                       TestSystemOptions options) {
  // Teardown in reverse dependency order while the engine is still alive, so
  // destructors that cancel their pending events do so against a valid pool.
  sound_scheme_.reset();
  virus_scanner_.reset();
  usb_audio_driver_.reset();
  audio_driver_.reset();
  nic_driver_.reset();
  disk_driver_.reset();
  kernel_.reset();
  usb_audio_.reset();
  audio_.reset();
  nic_.reset();
  disk_.reset();
  pit_.reset();
  pic_.reset();
  engine_.Reset();
  rng_ = sim::Rng(seed);
  Build(std::move(os), options);
}

void TestSystem::Build(kernel::KernelProfile os, const TestSystemOptions& options) {
  pic_ = std::make_unique<hw::InterruptController>(engine_);
  // IRQL assignments follow the usual x86 HAL ordering: the clock outranks
  // all device interrupts.
  pit_line_ = pic_->ConnectLine("PIT", Irql::kClock);
  disk_line_ = pic_->ConnectLine("IDE", static_cast<Irql>(12));
  nic_line_ = pic_->ConnectLine("NIC", static_cast<Irql>(10));
  audio_line_ = pic_->ConnectLine("AUDIO", static_cast<Irql>(14));

  pit_ = std::make_unique<hw::Pit>(engine_, *pic_, pit_line_);
  disk_ = std::make_unique<hw::IdeDisk>(engine_, *pic_, disk_line_, rng_.Fork());
  nic_ = std::make_unique<hw::Nic>(engine_, *pic_, nic_line_, rng_.Fork());

  const bool legacy = os.legacy_vmm;
  // Table 2: "Audio solution — Ensoniq PCI sound card" on NT, "Phillips DSS
  // 350 USB speakers" on Windows 98 (NT 4.0 does not support USB).
  if (legacy) {
    usb_audio_ = std::make_unique<hw::UhciController>(engine_, *pic_, audio_line_);
  } else {
    audio_ = std::make_unique<hw::AudioDevice>(engine_, *pic_, audio_line_);
  }

  kernel_ = std::make_unique<kernel::Kernel>(engine_, rng_.Fork(), *pic_, *pit_, pit_line_,
                                             std::move(os));

  disk_driver_ = std::make_unique<drivers::DiskDriver>(*kernel_, *disk_, disk_line_);
  nic_driver_ = std::make_unique<drivers::NicDriver>(*kernel_, *nic_, nic_line_);
  if (legacy) {
    usb_audio_driver_ =
        std::make_unique<drivers::UsbAudioDriver>(*kernel_, *usb_audio_, audio_line_);
  } else {
    audio_driver_ = std::make_unique<drivers::AudioDriver>(*kernel_, *audio_, audio_line_);
  }

  if (legacy && options.virus_scanner) {
    virus_scanner_ = std::make_unique<vmm98::VirusScanner>(*kernel_, rng_.Fork());
  }
  if (legacy && options.sound_scheme != vmm98::SchemeKind::kNoSounds) {
    vmm98::SoundScheme::Config sound_config;
    sound_config.kind = options.sound_scheme;
    sound_scheme_ = std::make_unique<vmm98::SoundScheme>(*kernel_, rng_.Fork(), sound_config);
  }
  if (options.kernel_self_noise) {
    kernel_->StartSelfNoise();
  }
}

workload::StressLoad::Deps TestSystem::deps() {
  workload::StressLoad::Deps d;
  d.kernel = kernel_.get();
  d.disk = disk_driver_.get();
  d.nic = nic_.get();
  d.audio = &audio();
  d.virus_scanner = virus_scanner_.get();
  d.sound_scheme = sound_scheme_.get();
  return d;
}

}  // namespace wdmlat::lab
