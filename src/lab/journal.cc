#include "src/lab/journal.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "src/lab/report_io.h"
#include "src/obs/json.h"

namespace wdmlat::lab {

namespace {

constexpr const char* kFormatName = "wdmlat-run-journal";
constexpr int kFormatVersion = 1;

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool ParseU64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = static_cast<std::uint64_t>(value);
  return true;
}

// Fingerprint input: a canonical textual description of the spec. Text is
// deliberate — it keeps the hash independent of struct layout, and a
// mismatch can be debugged by printing the two descriptions side by side.
std::string SpecDescription(const MatrixSpec& spec) {
  std::ostringstream out;
  out << "master_seed=" << spec.master_seed << ";trials=" << spec.trials
      << ";stress_minutes=" << HexDouble(spec.stress_minutes)
      << ";warmup_seconds=" << HexDouble(spec.warmup_seconds) << ";oses=";
  for (const auto& os : spec.oses) {
    out << os.name << ",";
  }
  out << ";workloads=";
  for (const auto& workload : spec.workloads) {
    out << workload.name << ",";
  }
  out << ";priorities=";
  for (const int priority : spec.priorities) {
    out << priority << ",";
  }
  out << ";episode_threshold_us=" << HexDouble(spec.episode_threshold_us)
      << ";max_episodes=" << spec.max_episodes;
  if (spec.faults != nullptr && !spec.faults->empty()) {
    out << ";faults=" << spec.faults->name << ":" << spec.faults->seed << ":"
        << spec.faults->specs.size();
  }
  return out.str();
}

}  // namespace

std::uint64_t MatrixFingerprint(const MatrixSpec& spec) {
  return Fnv1a64(SpecDescription(spec));
}

bool LoadJournal(const std::string& path, const MatrixSpec* spec, JournalContents* out,
                 std::string* error) {
  *out = JournalContents{};
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open journal: " + path;
    }
    return false;
  }
  std::string line;
  std::size_t line_number = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    const obs::JsonParseResult parsed = obs::ParseJson(line);
    if (!parsed.valid) {
      if (error != nullptr) {
        std::ostringstream message;
        message << path << ":" << line_number << ": " << parsed.error << " (column "
                << parsed.error_column << ")";
        *error = message.str();
      }
      return false;
    }
    const obs::JsonValue& value = parsed.value;
    if (!have_header) {
      if (value.StringOr("format", "") != kFormatName ||
          static_cast<int>(value.NumberOr("version", 0.0)) != kFormatVersion) {
        if (error != nullptr) {
          *error = path + ": not a wdmlat run journal";
        }
        return false;
      }
      if (!ParseU64(value.StringOr("fingerprint", ""), &out->fingerprint) ||
          !ParseU64(value.StringOr("master_seed", ""), &out->master_seed)) {
        if (error != nullptr) {
          *error = path + ": journal header is missing fingerprint/master_seed";
        }
        return false;
      }
      out->cell_count = static_cast<std::size_t>(value.NumberOr("cells", 0.0));
      if (spec != nullptr) {
        const std::uint64_t expected = MatrixFingerprint(*spec);
        if (out->fingerprint != expected || out->cell_count != spec->cell_count()) {
          if (error != nullptr) {
            *error = path +
                     ": journal was written for a different matrix "
                     "(fingerprint/cell-count mismatch); refusing to resume";
          }
          return false;
        }
      }
      have_header = true;
      continue;
    }
    JournalEntry entry;
    entry.cell = static_cast<std::size_t>(value.NumberOr("cell", 0.0));
    entry.status = value.StringOr("status", "");
    entry.artifact = value.StringOr("artifact", "");
    entry.taxonomy = value.StringOr("taxonomy", "");
    entry.message = value.StringOr("message", "");
    entry.attempts = static_cast<int>(value.NumberOr("attempts", 1.0));
    if (!ParseU64(value.StringOr("seed", "0"), &entry.seed)) {
      entry.seed = 0;
    }
    if (!ParseU64(value.StringOr("checksum", "0"), &entry.checksum)) {
      entry.checksum = 0;
    }
    if (!ParseU64(value.StringOr("samples", "0"), &entry.samples)) {
      entry.samples = 0;
    }
    if (entry.status != "ok" && entry.status != "failed") {
      if (error != nullptr) {
        std::ostringstream message;
        message << path << ":" << line_number << ": unknown cell status \"" << entry.status
                << "\"";
        *error = message.str();
      }
      return false;
    }
    out->entries.push_back(std::move(entry));
  }
  if (!have_header) {
    if (error != nullptr) {
      *error = path + ": journal is empty (no header line)";
    }
    return false;
  }
  return true;
}

bool RunJournal::Create(const std::string& path, const MatrixSpec& spec,
                        std::string* error) {
  path_ = path;
  std::error_code ec;
  std::filesystem::create_directories(CellsDir(), ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create artifact directory " + CellsDir() + ": " + ec.message();
    }
    return false;
  }
  out_.open(path, std::ios::trunc);
  if (!out_) {
    if (error != nullptr) {
      *error = "cannot create journal: " + path;
    }
    return false;
  }
  out_ << "{\"format\": \"" << kFormatName << "\", \"version\": " << kFormatVersion
       << ", \"fingerprint\": \"" << MatrixFingerprint(spec) << "\", \"master_seed\": \""
       << spec.master_seed << "\", \"cells\": " << spec.cell_count() << "}\n";
  out_.flush();
  if (!out_) {
    if (error != nullptr) {
      *error = "write failed on journal: " + path;
    }
    return false;
  }
  return true;
}

bool RunJournal::OpenAppend(const std::string& path, std::string* error) {
  path_ = path;
  std::error_code ec;
  std::filesystem::create_directories(CellsDir(), ec);  // may already exist
  out_.open(path, std::ios::app);
  if (!out_) {
    if (error != nullptr) {
      *error = "cannot reopen journal: " + path;
    }
    return false;
  }
  return true;
}

bool RunJournal::Append(const JournalEntry& entry, std::string* error) {
  std::ostringstream line;
  line << "{\"cell\": " << entry.cell << ", \"seed\": \"" << entry.seed
       << "\", \"status\": \"" << entry.status << "\"";
  if (entry.status == "ok") {
    line << ", \"checksum\": \"" << entry.checksum << "\", \"artifact\": \""
         << EscapeJson(entry.artifact) << "\", \"samples\": \"" << entry.samples << "\"";
  } else {
    line << ", \"taxonomy\": \"" << EscapeJson(entry.taxonomy) << "\", \"message\": \""
         << EscapeJson(entry.message) << "\"";
  }
  line << ", \"attempts\": " << entry.attempts << "}\n";
  out_ << line.str();
  out_.flush();
  if (!out_) {
    if (error != nullptr) {
      *error = "write failed on journal: " + path_;
    }
    return false;
  }
  return true;
}

std::string RunJournal::CellsDir() const { return path_ + ".cells"; }

std::string RunJournal::ArtifactPath(std::size_t cell) const {
  return CellsDir() + "/cell_" + std::to_string(cell) + ".json";
}

}  // namespace wdmlat::lab
