#include "src/lab/csv_export.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wdmlat::lab {

namespace {

void WriteFile(const std::filesystem::path& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path.string() + " for writing");
  }
  out << contents;
  if (!out) {
    throw std::runtime_error("write failed for " + path.string());
  }
}

void AppendSummaryRow(std::ostringstream& summary, const std::string& name,
                      const stats::LatencyHistogram& hist) {
  summary << name << "," << hist.count() << "," << hist.mean_ms() << ","
          << hist.QuantileMs(0.5) << "," << hist.QuantileMs(0.99) << ","
          << hist.QuantileMs(0.9999) << "," << hist.max_ms() << "\n";
}

}  // namespace

std::string DefaultCsvPrefix(const LabReport& report) {
  std::string prefix = report.os_name + "_" + report.workload_name + "_p" +
                       std::to_string(report.thread_priority);
  for (char& c : prefix) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      c = '_';
    }
  }
  return prefix;
}

int WriteReportCsv(const LabReport& report, const std::string& directory,
                   const std::string& prefix) {
  const std::filesystem::path dir(directory);
  std::filesystem::create_directories(dir);

  int files = 0;
  std::ostringstream summary;
  summary << "distribution,count,mean_ms,p50_ms,p99_ms,p9999_ms,max_ms\n";

  auto dump = [&](const char* name, const stats::LatencyHistogram& hist, bool enabled = true) {
    if (!enabled) {
      return;
    }
    WriteFile(dir / (prefix + "_" + name + ".csv"), hist.ToCsv());
    AppendSummaryRow(summary, name, hist);
    ++files;
  };
  dump("dpc_interrupt", report.dpc_interrupt);
  dump("thread", report.thread);
  dump("thread_interrupt", report.thread_interrupt);
  dump("interrupt", report.interrupt, report.has_interrupt_latency);
  dump("isr_to_dpc", report.isr_to_dpc, report.has_interrupt_latency);
  dump("true_pit_interrupt", report.true_pit_interrupt_latency);

  WriteFile(dir / (prefix + "_summary.csv"), summary.str());
  return files + 1;
}

}  // namespace wdmlat::lab
