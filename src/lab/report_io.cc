#include "src/lab/report_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/obs/json.h"

namespace wdmlat::lab {

namespace {

constexpr const char* kFormatName = "wdmlat-cell-report";
constexpr int kFormatVersion = 1;

std::string U64String(std::uint64_t value) { return std::to_string(value); }

}  // namespace

// Shared with the fleet record serialization — see report_io.h.
namespace report_json {

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool ParseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  const std::string copy(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(copy.c_str(), &end, 10);
  if (errno != 0 || end != copy.c_str() + copy.size()) {
    return false;
  }
  *out = static_cast<std::uint64_t>(value);
  return true;
}

void WriteHistogram(std::ostringstream& out, const char* name,
                    const stats::LatencyHistogram& hist) {
  const stats::LatencyHistogram::State state = hist.ExportState();
  out << "\"" << name << "\": {\"buckets\": [";
  bool first = true;
  for (const auto& [index, count] : state.buckets) {
    out << (first ? "" : ", ") << "[" << index << ", \"" << U64String(count) << "\"]";
    first = false;
  }
  out << "], \"count\": \"" << U64String(state.count) << "\", \"underflow\": \""
      << U64String(state.underflow) << "\", \"sum_us\": \"" << HexDouble(state.sum_us)
      << "\", \"min_us\": \"" << HexDouble(state.min_us) << "\", \"max_us\": \""
      << HexDouble(state.max_us) << "\"}";
}

bool ReadStringField(const obs::JsonValue& object, const char* key, std::string* out,
                     std::string* error) {
  const obs::JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_string()) {
    if (error != nullptr) {
      *error = std::string("missing or non-string field \"") + key + "\"";
    }
    return false;
  }
  *out = value->as_string();
  return true;
}

bool ReadU64Field(const obs::JsonValue& object, const char* key, std::uint64_t* out,
                  std::string* error) {
  std::string text;
  if (!ReadStringField(object, key, &text, error)) {
    return false;
  }
  if (!ParseU64(text, out)) {
    if (error != nullptr) {
      *error = std::string("field \"") + key + "\" is not a decimal u64: " + text;
    }
    return false;
  }
  return true;
}

bool ReadHexDoubleField(const obs::JsonValue& object, const char* key, double* out,
                        std::string* error) {
  std::string text;
  if (!ReadStringField(object, key, &text, error)) {
    return false;
  }
  if (!ParseHexDouble(text, out)) {
    if (error != nullptr) {
      *error = std::string("field \"") + key + "\" is not a hexfloat: " + text;
    }
    return false;
  }
  return true;
}

bool ReadHistogram(const obs::JsonValue& histograms, const char* name,
                   stats::LatencyHistogram* out, std::string* error) {
  const obs::JsonValue* object = histograms.Find(name);
  if (object == nullptr || !object->is_object()) {
    if (error != nullptr) {
      *error = std::string("missing histogram \"") + name + "\"";
    }
    return false;
  }
  stats::LatencyHistogram::State state;
  const obs::JsonValue* buckets = object->Find("buckets");
  if (buckets == nullptr || !buckets->is_array()) {
    if (error != nullptr) {
      *error = std::string("histogram \"") + name + "\" has no buckets array";
    }
    return false;
  }
  for (const obs::JsonValue& entry : buckets->items()) {
    if (!entry.is_array() || entry.items().size() != 2 || !entry.items()[0].is_number() ||
        !entry.items()[1].is_string()) {
      if (error != nullptr) {
        *error = std::string("histogram \"") + name + "\": malformed bucket entry";
      }
      return false;
    }
    std::uint64_t count = 0;
    if (!ParseU64(entry.items()[1].as_string(), &count)) {
      if (error != nullptr) {
        *error = std::string("histogram \"") + name + "\": bad bucket count";
      }
      return false;
    }
    state.buckets.emplace_back(static_cast<int>(entry.items()[0].as_number()), count);
  }
  if (!ReadU64Field(*object, "count", &state.count, error) ||
      !ReadU64Field(*object, "underflow", &state.underflow, error) ||
      !ReadHexDoubleField(*object, "sum_us", &state.sum_us, error) ||
      !ReadHexDoubleField(*object, "min_us", &state.min_us, error) ||
      !ReadHexDoubleField(*object, "max_us", &state.max_us, error)) {
    return false;
  }
  if (!out->ImportState(state)) {
    if (error != nullptr) {
      *error = std::string("histogram \"") + name +
               "\": state rejected (bucket/count conservation)";
    }
    return false;
  }
  return true;
}

void WriteSketch(std::ostringstream& out, const char* name,
                 const stats::QuantileSketch& sketch) {
  const stats::QuantileSketch::State state = sketch.ExportState();
  out << "\"" << name << "\": {\"levels\": [";
  for (std::size_t l = 0; l < state.levels.size(); ++l) {
    out << (l == 0 ? "" : ", ") << "[";
    for (std::size_t i = 0; i < state.levels[l].size(); ++i) {
      out << (i == 0 ? "" : ", ") << "\"" << HexDouble(state.levels[l][i]) << "\"";
    }
    out << "]";
  }
  out << "], \"parities\": [";
  for (std::size_t l = 0; l < state.parities.size(); ++l) {
    out << (l == 0 ? "" : ", ") << static_cast<int>(state.parities[l]);
  }
  // Tail heap order is exported verbatim so the import is bit-identical.
  out << "], \"tail\": [";
  for (std::size_t i = 0; i < state.tail.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << HexDouble(state.tail[i]) << "\"";
  }
  out << "], \"count\": \"" << U64String(state.count) << "\", \"sum_ms\": \""
      << HexDouble(state.sum_ms) << "\", \"min_ms\": \"" << HexDouble(state.min_ms)
      << "\", \"max_ms\": \"" << HexDouble(state.max_ms) << "\"}";
}

bool ReadSketch(const obs::JsonValue& object, const char* name, stats::QuantileSketch* out,
                std::string* error) {
  const obs::JsonValue* sketch = object.Find(name);
  if (sketch == nullptr) {
    return true;  // pre-sketch artifact: leave the sketch empty
  }
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = std::string("sketch \"") + name + "\": " + what;
    }
    return false;
  };
  if (!sketch->is_object()) {
    return fail("not an object");
  }
  stats::QuantileSketch::State state;
  const obs::JsonValue* levels = sketch->Find("levels");
  const obs::JsonValue* parities = sketch->Find("parities");
  const obs::JsonValue* tail = sketch->Find("tail");
  if (levels == nullptr || !levels->is_array() || parities == nullptr ||
      !parities->is_array() || tail == nullptr || !tail->is_array()) {
    return fail("missing levels/parities/tail arrays");
  }
  for (const obs::JsonValue& level : levels->items()) {
    if (!level.is_array()) {
      return fail("malformed level");
    }
    std::vector<double> items;
    items.reserve(level.items().size());
    for (const obs::JsonValue& item : level.items()) {
      double value = 0.0;
      if (!item.is_string() || !ParseHexDouble(item.as_string(), &value)) {
        return fail("level item is not a hexfloat");
      }
      items.push_back(value);
    }
    state.levels.push_back(std::move(items));
  }
  for (const obs::JsonValue& parity : parities->items()) {
    if (!parity.is_number()) {
      return fail("parity is not a number");
    }
    state.parities.push_back(static_cast<std::uint8_t>(parity.as_number()));
  }
  for (const obs::JsonValue& item : tail->items()) {
    double value = 0.0;
    if (!item.is_string() || !ParseHexDouble(item.as_string(), &value)) {
      return fail("tail item is not a hexfloat");
    }
    state.tail.push_back(value);
  }
  if (!ReadU64Field(*sketch, "count", &state.count, error) ||
      !ReadHexDoubleField(*sketch, "sum_ms", &state.sum_ms, error) ||
      !ReadHexDoubleField(*sketch, "min_ms", &state.min_ms, error) ||
      !ReadHexDoubleField(*sketch, "max_ms", &state.max_ms, error)) {
    return false;
  }
  if (!out->ImportState(state)) {
    return fail("state rejected (weight conservation)");
  }
  return true;
}

}  // namespace report_json

using namespace report_json;  // NOLINT: same-file dialect helpers

namespace {

void WriteAnatomy(std::ostringstream& out, const std::vector<obs::AnatomyEpisode>& anatomy) {
  out << "\"anatomy\": [";
  for (std::size_t i = 0; i < anatomy.size(); ++i) {
    const obs::AnatomyEpisode& ep = anatomy[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "{\"latency_ms\": \"" << HexDouble(ep.latency_ms) << "\", \"window_begin\": \""
        << U64String(ep.window_begin) << "\", \"window_end\": \""
        << U64String(ep.window_end) << "\", \"truncated\": "
        << (ep.truncated ? "true" : "false") << ", \"stage_cycles\": [";
    for (std::size_t s = 0; s < obs::kAnatomyStageCount; ++s) {
      out << (s == 0 ? "" : ", ") << "\"" << U64String(ep.stage_cycles[s]) << "\"";
    }
    out << "], \"stage_blame\": [";
    for (std::size_t s = 0; s < obs::kAnatomyStageCount; ++s) {
      const obs::AnatomyEpisode::Blame& blame = ep.stage_blame[s];
      out << (s == 0 ? "" : ", ") << "{\"module\": \"" << Escape(blame.module)
          << "\", \"function\": \"" << Escape(blame.function) << "\", \"cycles\": \""
          << U64String(blame.cycles) << "\"}";
    }
    out << "], \"culprit\": {\"module\": \"" << Escape(ep.culprit.module)
        << "\", \"function\": \"" << Escape(ep.culprit.function) << "\", \"cycles\": \""
        << U64String(ep.culprit.cycles) << "\"}}";
  }
  out << "]";
}

bool ReadBlame(const obs::JsonValue& object, obs::AnatomyEpisode::Blame* blame,
               std::string* error) {
  return object.is_object() &&
         ReadStringField(object, "module", &blame->module, error) &&
         ReadStringField(object, "function", &blame->function, error) &&
         ReadU64Field(object, "cycles", &blame->cycles, error);
}

bool ReadAnatomy(const obs::JsonValue& root, std::vector<obs::AnatomyEpisode>* anatomy,
                 std::string* error) {
  const obs::JsonValue* entries = root.Find("anatomy");
  if (entries == nullptr) {
    return true;  // pre-anatomy artifact: leave the list empty
  }
  const auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string("anatomy: ") + what;
    }
    return false;
  };
  if (!entries->is_array()) {
    return fail("not an array");
  }
  for (const obs::JsonValue& entry : entries->items()) {
    if (!entry.is_object()) {
      return fail("episode entries must be objects");
    }
    obs::AnatomyEpisode ep;
    if (!ReadHexDoubleField(entry, "latency_ms", &ep.latency_ms, error) ||
        !ReadU64Field(entry, "window_begin", &ep.window_begin, error) ||
        !ReadU64Field(entry, "window_end", &ep.window_end, error)) {
      return false;
    }
    ep.truncated = entry.BoolOr("truncated", false);
    const obs::JsonValue* cycles = entry.Find("stage_cycles");
    const obs::JsonValue* blames = entry.Find("stage_blame");
    const obs::JsonValue* culprit = entry.Find("culprit");
    if (cycles == nullptr || !cycles->is_array() ||
        cycles->items().size() != obs::kAnatomyStageCount || blames == nullptr ||
        !blames->is_array() || blames->items().size() != obs::kAnatomyStageCount ||
        culprit == nullptr) {
      return fail("episode needs stage_cycles/stage_blame arrays of 7 and a culprit");
    }
    for (std::size_t s = 0; s < obs::kAnatomyStageCount; ++s) {
      const obs::JsonValue& item = cycles->items()[s];
      if (!item.is_string() || !ParseU64(item.as_string(), &ep.stage_cycles[s])) {
        return fail("stage cycle is not a decimal u64");
      }
      if (!ReadBlame(blames->items()[s], &ep.stage_blame[s], error)) {
        return false;
      }
    }
    if (!ReadBlame(*culprit, &ep.culprit, error)) {
      return false;
    }
    anatomy->push_back(std::move(ep));
  }
  return true;
}

}  // namespace

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string HexDouble(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

bool ParseHexDouble(std::string_view text, double* out) {
  if (text.empty()) {
    return false;
  }
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string ReportToJson(const LabReport& report) {
  std::ostringstream out;
  out << "{\"format\": \"" << kFormatName << "\", \"version\": " << kFormatVersion
      << ",\n";
  out << "\"os_name\": \"" << Escape(report.os_name) << "\", \"workload_name\": \""
      << Escape(report.workload_name)
      << "\", \"thread_priority\": " << report.thread_priority
      << ", \"has_interrupt_latency\": " << (report.has_interrupt_latency ? "true" : "false")
      << ",\n";
  out << "\"samples\": \"" << U64String(report.samples) << "\", \"samples_per_hour\": \""
      << HexDouble(report.samples_per_hour) << "\", \"fault_activations\": \""
      << U64String(report.fault_activations) << "\",\n";
  out << "\"usage\": {\"category\": \"" << Escape(report.usage.category)
      << "\", \"compression\": \"" << HexDouble(report.usage.compression)
      << "\", \"day_hours\": \"" << HexDouble(report.usage.day_hours)
      << "\", \"week_hours\": \"" << HexDouble(report.usage.week_hours) << "\"},\n";
  out << "\"histograms\": {\n";
  WriteHistogram(out, "dpc_interrupt", report.dpc_interrupt);
  out << ",\n";
  WriteHistogram(out, "thread", report.thread);
  out << ",\n";
  WriteHistogram(out, "thread_interrupt", report.thread_interrupt);
  out << ",\n";
  WriteHistogram(out, "interrupt", report.interrupt);
  out << ",\n";
  WriteHistogram(out, "isr_to_dpc", report.isr_to_dpc);
  out << ",\n";
  WriteHistogram(out, "true_pit_interrupt_latency", report.true_pit_interrupt_latency);
  out << "\n},\n";
  out << "\"episodes\": [";
  for (std::size_t i = 0; i < report.episodes.size(); ++i) {
    const obs::EpisodeSummary& ep = report.episodes[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "{\"latency_ms\": \"" << HexDouble(ep.latency_ms) << "\", \"reported_at_ms\": \""
        << HexDouble(ep.reported_at_ms) << "\", \"true_module\": \""
        << Escape(ep.true_module) << "\", \"true_function\": \""
        << Escape(ep.true_function) << "\", \"true_ms\": \"" << HexDouble(ep.true_ms)
        << "\", \"cause_module\": \"" << Escape(ep.cause_module)
        << "\", \"cause_function\": \"" << Escape(ep.cause_function)
        << "\", \"cause_samples\": \"" << U64String(ep.cause_samples)
        << "\", \"attributed\": " << (ep.attributed ? "true" : "false")
        << ", \"module_match\": " << (ep.module_match ? "true" : "false") << "}";
  }
  out << "],\n";
  WriteAnatomy(out, report.anatomy);
  out << ",\n";
  WriteSketch(out, "thread_sketch", report.thread_sketch);
  out << "}\n";
  return out.str();
}

bool ReportFromJson(std::string_view text, LabReport* report, std::string* error) {
  *report = LabReport{};
  const obs::JsonParseResult parsed = obs::ParseJson(text);
  if (!parsed.valid) {
    if (error != nullptr) {
      std::ostringstream message;
      message << "JSON error at line " << parsed.error_line << ", column "
              << parsed.error_column << ": " << parsed.error;
      *error = message.str();
    }
    return false;
  }
  const obs::JsonValue& root = parsed.value;
  if (!root.is_object() || root.StringOr("format", "") != kFormatName) {
    if (error != nullptr) {
      *error = "not a wdmlat-cell-report document";
    }
    return false;
  }
  if (static_cast<int>(root.NumberOr("version", 0.0)) != kFormatVersion) {
    if (error != nullptr) {
      *error = "unsupported cell-report version";
    }
    return false;
  }
  LabReport result;
  if (!ReadStringField(root, "os_name", &result.os_name, error) ||
      !ReadStringField(root, "workload_name", &result.workload_name, error)) {
    return false;
  }
  result.thread_priority = static_cast<int>(root.NumberOr("thread_priority", 0.0));
  result.has_interrupt_latency = root.BoolOr("has_interrupt_latency", false);
  if (!ReadU64Field(root, "samples", &result.samples, error) ||
      !ReadHexDoubleField(root, "samples_per_hour", &result.samples_per_hour, error) ||
      !ReadU64Field(root, "fault_activations", &result.fault_activations, error)) {
    return false;
  }
  const obs::JsonValue* usage = root.Find("usage");
  if (usage == nullptr || !usage->is_object()) {
    if (error != nullptr) {
      *error = "missing usage object";
    }
    return false;
  }
  if (!ReadStringField(*usage, "category", &result.usage.category, error) ||
      !ReadHexDoubleField(*usage, "compression", &result.usage.compression, error) ||
      !ReadHexDoubleField(*usage, "day_hours", &result.usage.day_hours, error) ||
      !ReadHexDoubleField(*usage, "week_hours", &result.usage.week_hours, error)) {
    return false;
  }
  const obs::JsonValue* histograms = root.Find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    if (error != nullptr) {
      *error = "missing histograms object";
    }
    return false;
  }
  if (!ReadHistogram(*histograms, "dpc_interrupt", &result.dpc_interrupt, error) ||
      !ReadHistogram(*histograms, "thread", &result.thread, error) ||
      !ReadHistogram(*histograms, "thread_interrupt", &result.thread_interrupt, error) ||
      !ReadHistogram(*histograms, "interrupt", &result.interrupt, error) ||
      !ReadHistogram(*histograms, "isr_to_dpc", &result.isr_to_dpc, error) ||
      !ReadHistogram(*histograms, "true_pit_interrupt_latency",
                     &result.true_pit_interrupt_latency, error)) {
    return false;
  }
  const obs::JsonValue* episodes = root.Find("episodes");
  if (episodes == nullptr || !episodes->is_array()) {
    if (error != nullptr) {
      *error = "missing episodes array";
    }
    return false;
  }
  for (const obs::JsonValue& entry : episodes->items()) {
    if (!entry.is_object()) {
      if (error != nullptr) {
        *error = "episode entries must be objects";
      }
      return false;
    }
    obs::EpisodeSummary ep;
    if (!ReadHexDoubleField(entry, "latency_ms", &ep.latency_ms, error) ||
        !ReadHexDoubleField(entry, "reported_at_ms", &ep.reported_at_ms, error) ||
        !ReadStringField(entry, "true_module", &ep.true_module, error) ||
        !ReadStringField(entry, "true_function", &ep.true_function, error) ||
        !ReadHexDoubleField(entry, "true_ms", &ep.true_ms, error) ||
        !ReadStringField(entry, "cause_module", &ep.cause_module, error) ||
        !ReadStringField(entry, "cause_function", &ep.cause_function, error) ||
        !ReadU64Field(entry, "cause_samples", &ep.cause_samples, error)) {
      return false;
    }
    ep.attributed = entry.BoolOr("attributed", false);
    ep.module_match = entry.BoolOr("module_match", false);
    result.episodes.push_back(std::move(ep));
  }
  if (!ReadAnatomy(root, &result.anatomy, error) ||
      !ReadSketch(root, "thread_sketch", &result.thread_sketch, error)) {
    return false;
  }
  *report = std::move(result);
  return true;
}

}  // namespace wdmlat::lab
