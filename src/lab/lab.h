// LatencyLab: the top-level experiment API.
//
// One call runs one cell of the paper's measurement matrix: an OS
// personality, a stress workload, and a measured thread priority, for a
// given virtual duration — and returns the full latency distributions the
// paper's figures and tables are built from.
//
//   wdmlat::lab::LabConfig config;
//   config.os = wdmlat::kernel::MakeWin98Profile();
//   config.stress = wdmlat::workload::GamesStress();
//   config.thread_priority = 28;
//   config.stress_minutes = 10.0;
//   auto report = wdmlat::lab::RunLatencyExperiment(config);
//   report.thread.QuantileMs(0.9999);

#ifndef SRC_LAB_LAB_H_
#define SRC_LAB_LAB_H_

#include <cstdint>
#include <string>

#include <vector>

#include "src/drivers/cause_tool.h"
#include "src/drivers/latency_driver.h"
#include "src/fault/fault.h"
#include "src/kernel/profile.h"
#include "src/kernel/trace.h"
#include "src/lab/test_system.h"
#include "src/obs/anatomy.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/runtime/supervisor.h"
#include "src/stats/histogram.h"
#include "src/stats/quantile_sketch.h"
#include "src/stats/usage_model.h"
#include "src/workload/stress_profile.h"

namespace wdmlat::lab {

// Optional observability for one experiment run. All pointers are borrowed
// and may be null; with nothing set the dispatcher's trace sink stays null
// and the hot path pays nothing. Sinks only observe — they consume no
// simulation RNG and reorder no events — so attaching them leaves the
// measured distributions bit-identical (tests/obs_lab_test.cc).
struct ObsOptions {
  // Receives every dispatcher transition (e.g. an obs::ChromeTraceWriter).
  kernel::TraceSink* trace_sink = nullptr;
  // Collects kernel event counts, time-at-raised-IRQL and lockout totals,
  // plus end-of-run dispatcher/engine counters.
  obs::MetricsRegistry* metrics = nullptr;
  // >0: sample DPC/ready/work queue depths every so many virtual ms into
  // `metrics` (and onto the trace's counter track when both are attached).
  double queue_sample_ms = 0.0;
  // >0: arm an episode flight recorder (plus a cause tool) at this
  // thread-latency threshold; episode summaries land in LabReport::episodes.
  double episode_threshold_us = 0.0;
  std::size_t max_episodes = 64;
  // Cause-tool IP-sampling mode + NMI period (paper 2.3 vs 6.1) for the
  // episode tool armed by episode_threshold_us.
  drivers::CauseTool::Sampling sampling = drivers::CauseTool::Sampling::kPitHook;
  double nmi_period_ms = 0.2;
  // Attach an obs::LatencyAnatomy sink (needs episode_threshold_us > 0):
  // exact per-episode stage decomposition into LabReport::anatomy. A passive
  // trace sink — measured distributions stay bit-identical.
  bool anatomy = false;
  // Stream every recorded thread-latency sample into
  // LabReport::thread_sketch (and metrics series "driver.thread_ms" when a
  // registry is attached).
  bool sketch = false;
};

// Supervision hooks for one run (all optional; everything off by default).
// When any hook is armed the measurement phase executes as a sequence of
// RunUntil slices in cycle space — provably bit-identical to the single-call
// path, since RunUntil fires exactly the events at or before its deadline
// and slice boundaries carry no events of their own — with the watchdog
// polled and the invariant auditor run between slices.
struct RunSupervision {
  // Host-clock deadline budget, armed by the matrix supervisor; polled
  // between slices (throws runtime::DeadlineExceeded past the budget). The
  // simulation cannot be preempted inside a slice — a wedged callback is
  // detected at the next boundary, not interrupted.
  runtime::Watchdog* watchdog = nullptr;
  // >0: run a sim::InvariantAuditor pass every this many virtual seconds; a
  // non-empty report throws runtime::InvariantViolation, degrading the cell
  // to failed instead of letting a sick simulator feed the merge.
  double audit_every_s = 0.0;
  // Run one audit pass after the measurement phase (cheap; catches
  // corruption that accumulated after the last periodic pass).
  bool audit_at_end = false;
  // Fixture for tests/CI: the first audit pass reports one injected
  // violation, proving the auditor fails the cell rather than the process.
  bool force_audit_violation = false;
  // Black-box ring (borrowed): attached to the trace fanout for the whole
  // run so a failure's diagnostic bundle can include the recent-event tail.
  // Trace sinks are pure observers, so the run stays bit-identical.
  kernel::TraceSession* black_box = nullptr;
  // Virtual slice length when no audit cadence dictates one.
  double slice_s = 1.0;

  bool enabled() const {
    return watchdog != nullptr || audit_every_s > 0.0 || audit_at_end ||
           force_audit_violation || black_box != nullptr;
  }
};

struct LabConfig {
  kernel::KernelProfile os;
  workload::StressProfile stress;
  // Priority of the measured kernel-mode thread (24 or 28 in the paper).
  int thread_priority = kernel::kDefaultRealTimePriority;
  // Virtual measurement duration after warmup.
  double stress_minutes = 10.0;
  double warmup_seconds = 5.0;
  std::uint64_t seed = 1;
  TestSystemOptions options;
  drivers::LatencyDriver::Config driver;  // thread_priority is overridden
  ObsOptions obs;
  // Optional fault plan (borrowed) driven alongside the workload by a
  // fault::Injector. Null or empty means no injector is constructed at all,
  // so the run is bit-identical to one without the fault subsystem.
  const fault::FaultPlan* faults = nullptr;
  // Watchdog/auditor/black-box hooks (see RunSupervision).
  RunSupervision supervision;
};

struct LabReport {
  std::string os_name;
  std::string workload_name;
  int thread_priority = 0;

  // Tool-measured distributions (the paper's data).
  stats::LatencyHistogram dpc_interrupt;     // HW int (est.) -> DPC
  stats::LatencyHistogram thread;            // DPC -> thread
  stats::LatencyHistogram thread_interrupt;  // HW int (est.) -> thread
  stats::LatencyHistogram interrupt;         // HW int (est.) -> ISR (98 only)
  stats::LatencyHistogram isr_to_dpc;        // ISR -> DPC (98 only)
  bool has_interrupt_latency = false;

  // Ground truth from the dispatcher observers, for every PIT interrupt
  // (used to validate the tool and to report NT interrupt latency, which the
  // paper's tool cannot measure without source access).
  stats::LatencyHistogram true_pit_interrupt_latency;

  std::uint64_t samples = 0;
  double samples_per_hour = 0.0;
  stats::UsageModel usage;

  // Long-latency episodes captured by the flight recorder (empty unless
  // ObsOptions::episode_threshold_us was set).
  std::vector<obs::EpisodeSummary> episodes;

  // Exact causal decomposition of the same episodes (empty unless
  // ObsOptions::anatomy was set). Pairs with `episodes` by index.
  std::vector<obs::AnatomyEpisode> anatomy;

  // Streaming per-sample thread-latency sketch (zero count unless
  // ObsOptions::sketch was set). Exact P99.9/P99.99 via its top-K tail.
  stats::QuantileSketch thread_sketch;

  // Fault-injection ground truth (zero unless LabConfig::faults was set).
  std::uint64_t fault_activations = 0;
};

LabReport RunLatencyExperiment(const LabConfig& config);

// Same experiment, run on a caller-provided machine. `system` must have been
// freshly constructed — or warm-Reset() — with this config's (os, seed,
// options) and not advanced since: the run starts at the engine's current
// time. The fleet's warm cell runner uses this to amortize TestSystem
// construction across a shard's cells; results are bit-identical to
// RunLatencyExperiment(config) (fleet golden-checksum test).
LabReport RunLatencyExperimentOn(TestSystem& system, const LabConfig& config);

}  // namespace wdmlat::lab

#endif  // SRC_LAB_LAB_H_
