// LatencyLab: the top-level experiment API.
//
// One call runs one cell of the paper's measurement matrix: an OS
// personality, a stress workload, and a measured thread priority, for a
// given virtual duration — and returns the full latency distributions the
// paper's figures and tables are built from.
//
//   wdmlat::lab::LabConfig config;
//   config.os = wdmlat::kernel::MakeWin98Profile();
//   config.stress = wdmlat::workload::GamesStress();
//   config.thread_priority = 28;
//   config.stress_minutes = 10.0;
//   auto report = wdmlat::lab::RunLatencyExperiment(config);
//   report.thread.QuantileMs(0.9999);

#ifndef SRC_LAB_LAB_H_
#define SRC_LAB_LAB_H_

#include <cstdint>
#include <string>

#include "src/drivers/latency_driver.h"
#include "src/kernel/profile.h"
#include "src/lab/test_system.h"
#include "src/stats/histogram.h"
#include "src/stats/usage_model.h"
#include "src/workload/stress_profile.h"

namespace wdmlat::lab {

struct LabConfig {
  kernel::KernelProfile os;
  workload::StressProfile stress;
  // Priority of the measured kernel-mode thread (24 or 28 in the paper).
  int thread_priority = kernel::kDefaultRealTimePriority;
  // Virtual measurement duration after warmup.
  double stress_minutes = 10.0;
  double warmup_seconds = 5.0;
  std::uint64_t seed = 1;
  TestSystemOptions options;
  drivers::LatencyDriver::Config driver;  // thread_priority is overridden
};

struct LabReport {
  std::string os_name;
  std::string workload_name;
  int thread_priority = 0;

  // Tool-measured distributions (the paper's data).
  stats::LatencyHistogram dpc_interrupt;     // HW int (est.) -> DPC
  stats::LatencyHistogram thread;            // DPC -> thread
  stats::LatencyHistogram thread_interrupt;  // HW int (est.) -> thread
  stats::LatencyHistogram interrupt;         // HW int (est.) -> ISR (98 only)
  stats::LatencyHistogram isr_to_dpc;        // ISR -> DPC (98 only)
  bool has_interrupt_latency = false;

  // Ground truth from the dispatcher observers, for every PIT interrupt
  // (used to validate the tool and to report NT interrupt latency, which the
  // paper's tool cannot measure without source access).
  stats::LatencyHistogram true_pit_interrupt_latency;

  std::uint64_t samples = 0;
  double samples_per_hour = 0.0;
  stats::UsageModel usage;
};

LabReport RunLatencyExperiment(const LabConfig& config);

}  // namespace wdmlat::lab

#endif  // SRC_LAB_LAB_H_
