#include "src/lab/lab.h"

#include <algorithm>
#include <memory>

#include "src/drivers/cause_tool.h"
#include "src/fault/injector.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/kernel_metrics.h"
#include "src/obs/trace_fanout.h"
#include "src/sim/invariant_auditor.h"
#include "src/workload/stress_load.h"

namespace wdmlat::lab {

namespace {

// The supervised measurement phase: the same cycle-space span as a single
// RunUntil call, cut into slices so the watchdog and auditor get control
// between events without perturbing them. RunUntil fires exactly the events
// at or before its deadline and then advances now() to the deadline, so
// slicing the span is bit-identical to running it in one call.
void RunSupervisedPhase(TestSystem& system, const RunSupervision& sup, double seconds) {
  sim::InvariantAuditor auditor(system.engine());
  // One IRQL-discipline check per core (exactly one on UP), plus the SMP
  // cross-core invariants (spinlocks, runqueues, IPI conservation).
  for (int core = 0; core < system.kernel().core_count(); ++core) {
    kernel::Dispatcher* dispatcher = &system.kernel().dispatcher(core);
    auditor.AddCheck(core == 0 ? "dispatcher" : "dispatcher.core" + std::to_string(core),
                     [dispatcher](std::vector<std::string>* v) { dispatcher->AuditDiscipline(v); });
  }
  if (kernel::Smp* smp = system.kernel().smp()) {
    auditor.AddCheck("smp", [smp](std::vector<std::string>* v) { smp->Audit(v); });
  }
  if (sup.force_audit_violation) {
    bool fired = false;
    auditor.AddCheck("fixture", [fired](std::vector<std::string>* v) mutable {
      if (!fired) {
        fired = true;
        v->push_back("injected audit violation (fixture)");
      }
    });
  }
  const bool auditing = sup.audit_every_s > 0.0 || sup.force_audit_violation;
  const double slice_s =
      sup.audit_every_s > 0.0 ? sup.audit_every_s : std::max(sup.slice_s, 1e-3);

  sim::Engine& engine = system.engine();
  const sim::Cycles deadline = engine.now() + sim::SecToCycles(seconds);
  while (engine.now() < deadline) {
    const sim::Cycles next =
        std::min(deadline, engine.now() + sim::SecToCycles(slice_s));
    engine.RunUntil(next);
    if (sup.watchdog != nullptr) {
      sup.watchdog->Check();
    }
    if (auditing) {
      const sim::AuditReport report = auditor.Audit();
      if (!report.ok()) {
        throw runtime::InvariantViolation(report.Render());
      }
    }
  }
  if (sup.audit_at_end) {
    const sim::AuditReport report = auditor.Audit();
    if (!report.ok()) {
      throw runtime::InvariantViolation(report.Render());
    }
  }
}

}  // namespace

LabReport RunLatencyExperiment(const LabConfig& config) {
  TestSystem system(config.os, config.seed, config.options);
  return RunLatencyExperimentOn(system, config);
}

LabReport RunLatencyExperimentOn(TestSystem& system, const LabConfig& config) {
  workload::StressLoad load(system.deps(), config.stress, system.ForkRng());

  drivers::LatencyDriver::Config driver_config = config.driver;
  driver_config.thread_priority = config.thread_priority;
  drivers::LatencyDriver driver(system.kernel(), driver_config);

  LabReport report;
  report.os_name = system.kernel().profile().name;
  report.workload_name = config.stress.name;
  report.thread_priority = config.thread_priority;
  report.usage = config.stress.usage;

  // --- Observability (optional, pure observers) ------------------------------
  const ObsOptions& obs = config.obs;
  obs::TraceFanout fanout;
  fanout.Add(obs.trace_sink);
  // Supervision black box: a plain ring-buffer sink, so arming it cannot
  // perturb the run it may later have to explain.
  fanout.Add(config.supervision.black_box);
  std::unique_ptr<obs::KernelMetricsCollector> collector;
  if (obs.metrics != nullptr) {
    collector = std::make_unique<obs::KernelMetricsCollector>(*obs.metrics);
    fanout.Add(collector.get());
  }
  std::unique_ptr<drivers::CauseTool> cause_tool;
  std::unique_ptr<obs::EpisodeFlightRecorder> recorder;
  std::unique_ptr<obs::LatencyAnatomy> anatomy;
  if (obs.episode_threshold_us > 0.0) {
    drivers::CauseTool::Config tool_config;
    tool_config.threshold_ms = obs.episode_threshold_us / 1000.0;
    tool_config.max_episodes = obs.max_episodes;
    tool_config.sampling = obs.sampling;
    tool_config.nmi_period_ms = obs.nmi_period_ms;
    cause_tool = std::make_unique<drivers::CauseTool>(system.kernel(), driver, tool_config);
    cause_tool->Start();  // registers its long-latency callback first

    obs::EpisodeFlightRecorder::Config rec_config;
    rec_config.threshold_ms = obs.episode_threshold_us / 1000.0;
    rec_config.max_episodes = obs.max_episodes;
    recorder = std::make_unique<obs::EpisodeFlightRecorder>(system.kernel(), rec_config);
    recorder->Arm(driver, cause_tool.get());
    fanout.Add(recorder->trace_sink());

    if (obs.anatomy) {
      obs::LatencyAnatomy::Config an_config;
      an_config.max_episodes = obs.max_episodes;
      anatomy = std::make_unique<obs::LatencyAnatomy>(an_config);
      fanout.Add(anatomy.get());
      // Registered third (after the cause tool and recorder) so anatomy
      // records pair by index with LabReport::episodes. The driver's sample
      // stamps are still live when the watches fire, giving the exact
      // [dpc_tsc, thread_tsc] window this latency was measured over.
      obs::LatencyAnatomy* sink = anatomy.get();
      drivers::LatencyDriver* drv = &driver;
      driver.AddLongLatencyCallback(
          obs.episode_threshold_us / 1000.0, [sink, drv](double ms) {
            const drivers::LatencyDriver::SampleStamps& stamps = drv->last_stamps();
            sink->OnEpisode(ms, stamps.dpc_tsc, stamps.thread_tsc);
          });
    }
  }
  if (obs.sketch) {
    stats::QuantileSketch* sketch = &report.thread_sketch;
    obs::MetricsRegistry* metrics = obs.metrics;
    driver.on_sample = [sketch, metrics](double thread_ms) {
      sketch->RecordMs(thread_ms);
      if (metrics != nullptr) {
        metrics->ObserveSketch("driver.thread_ms", thread_ms);
      }
    };
  }
  if (!fanout.empty()) {
    system.kernel().SetTraceSink(&fanout);
  }
  // The writer sees counter samples only when both a trace and metrics are
  // requested for the same run (single-cell mode; matrix cells sample into
  // their per-cell registries without a shared writer).
  obs::QueueDepthSampler sampler(
      system.kernel(), obs.metrics,
      dynamic_cast<obs::ChromeTraceWriter*>(obs.trace_sink), obs.queue_sample_ms);
  if (obs.queue_sample_ms > 0.0 && (obs.metrics != nullptr || obs.trace_sink != nullptr)) {
    sampler.Start();
  }

  // Ground-truth PIT interrupt latency for every tick (assert -> ISR entry).
  const int pit_line = system.kernel().clock_interrupt()->line();
  system.kernel().dispatcher().on_isr_entry =
      [&report, pit_line](int line, sim::Cycles asserted, sim::Cycles entry) {
        if (line == pit_line) {
          report.true_pit_interrupt_latency.Record(entry - asserted);
        }
      };

  // Fault injector (optional). Constructed only for a non-empty plan so that
  // a no-fault run cannot differ from a pre-subsystem run; seeded from
  // (plan.seed, cell seed) — not from system.ForkRng(), which would advance
  // the workload's stream.
  std::unique_ptr<fault::Injector> injector;
  if (config.faults != nullptr && !config.faults->empty()) {
    fault::InjectorTargets targets;
    targets.kernel = &system.kernel();
    targets.disk = &system.disk_driver();
    injector = std::make_unique<fault::Injector>(targets, *config.faults, config.seed);
    injector->Start();
  }

  // Paper order: start the measurement tools, then launch the load
  // (Section 3.1.1), with a short warmup before counting samples.
  load.Start();
  system.RunFor(config.warmup_seconds);
  driver.Start();
  if (config.supervision.enabled()) {
    RunSupervisedPhase(system, config.supervision, config.stress_minutes * 60.0);
  } else {
    system.RunForMinutes(config.stress_minutes);
  }
  driver.Stop();
  if (injector != nullptr) {
    injector->Stop();
    report.fault_activations = injector->activation_count();
  }
  system.kernel().SetTraceSink(nullptr);

  report.dpc_interrupt = driver.dpc_interrupt_latency();
  report.thread = driver.thread_latency();
  report.thread_interrupt = driver.thread_interrupt_latency();
  report.interrupt = driver.interrupt_latency();
  report.isr_to_dpc = driver.isr_to_dpc_latency();
  report.has_interrupt_latency = driver.measures_interrupt_latency();
  report.samples = driver.sample_count();
  report.samples_per_hour = driver.samples_per_hour();
  if (recorder != nullptr) {
    report.episodes = recorder->Summaries();
  }
  if (anatomy != nullptr) {
    report.anatomy = anatomy->episodes();
  }
  if (obs.metrics != nullptr) {
    obs::CollectRunCounters(system.kernel(), *obs.metrics);
    obs.metrics->Add("driver.samples", static_cast<double>(report.samples));
    obs.metrics->Set("driver.samples_per_hour", report.samples_per_hour);
    if (cause_tool != nullptr) {
      obs.metrics->Add("cause_tool.hook_samples",
                       static_cast<double>(cause_tool->hook_samples()));
      obs.metrics->Add("obs.episodes", static_cast<double>(report.episodes.size()));
    }
  }
  return report;
}

}  // namespace wdmlat::lab
