#include "src/lab/lab.h"

#include "src/workload/stress_load.h"

namespace wdmlat::lab {

LabReport RunLatencyExperiment(const LabConfig& config) {
  TestSystem system(config.os, config.seed, config.options);

  workload::StressLoad load(system.deps(), config.stress, system.ForkRng());

  drivers::LatencyDriver::Config driver_config = config.driver;
  driver_config.thread_priority = config.thread_priority;
  drivers::LatencyDriver driver(system.kernel(), driver_config);

  LabReport report;
  report.os_name = system.kernel().profile().name;
  report.workload_name = config.stress.name;
  report.thread_priority = config.thread_priority;
  report.usage = config.stress.usage;

  // Ground-truth PIT interrupt latency for every tick (assert -> ISR entry).
  const int pit_line = system.kernel().clock_interrupt()->line();
  system.kernel().dispatcher().on_isr_entry =
      [&report, pit_line](int line, sim::Cycles asserted, sim::Cycles entry) {
        if (line == pit_line) {
          report.true_pit_interrupt_latency.Record(entry - asserted);
        }
      };

  // Paper order: start the measurement tools, then launch the load
  // (Section 3.1.1), with a short warmup before counting samples.
  load.Start();
  system.RunFor(config.warmup_seconds);
  driver.Start();
  system.RunForMinutes(config.stress_minutes);
  driver.Stop();

  report.dpc_interrupt = driver.dpc_interrupt_latency();
  report.thread = driver.thread_latency();
  report.thread_interrupt = driver.thread_interrupt_latency();
  report.interrupt = driver.interrupt_latency();
  report.isr_to_dpc = driver.isr_to_dpc_latency();
  report.has_interrupt_latency = driver.measures_interrupt_latency();
  report.samples = driver.sample_count();
  report.samples_per_hour = driver.samples_per_hour();
  return report;
}

}  // namespace wdmlat::lab
