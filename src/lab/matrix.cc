#include "src/lab/matrix.h"

#include <cassert>
#include <chrono>
#include <mutex>

#include "src/kernel/profile.h"
#include "src/runtime/thread_pool.h"
#include "src/sim/rng.h"
#include "src/workload/stress_profile.h"

namespace wdmlat::lab {

MatrixSpec PaperMatrix() {
  MatrixSpec spec;
  spec.oses = {kernel::MakeNt4Profile(), kernel::MakeWin98Profile()};
  spec.workloads = {workload::OfficeStress(), workload::WorkstationStress(),
                    workload::GamesStress(), workload::WebStress()};
  spec.priorities = {28, 24};
  return spec;
}

std::uint64_t ExperimentMatrix::CellSeed(std::uint64_t master_seed, std::size_t os_index,
                                         std::size_t workload_index, int priority,
                                         int trial) {
  // Hash chain: XOR each coordinate into the running hash, then push it
  // through a full SplitMix64 avalanche round. Each round is a bijection, so
  // neighbouring cells (which differ in one small coordinate) land on
  // statistically independent xoshiro streams.
  std::uint64_t hash = master_seed;
  const std::uint64_t coords[] = {
      static_cast<std::uint64_t>(os_index), static_cast<std::uint64_t>(workload_index),
      static_cast<std::uint64_t>(priority), static_cast<std::uint64_t>(trial)};
  for (std::uint64_t coord : coords) {
    std::uint64_t state = hash ^ coord;
    hash = sim::SplitMix64(state);
  }
  return hash;
}

ExperimentMatrix::ExperimentMatrix(MatrixSpec spec) : spec_(std::move(spec)) {
  if (spec_.trials < 1) {
    spec_.trials = 1;
  }
  cells_.reserve(spec_.cell_count());
  for (std::size_t os_i = 0; os_i < spec_.oses.size(); ++os_i) {
    for (std::size_t wl_i = 0; wl_i < spec_.workloads.size(); ++wl_i) {
      for (std::size_t pr_i = 0; pr_i < spec_.priorities.size(); ++pr_i) {
        for (int trial = 0; trial < spec_.trials; ++trial) {
          MatrixCell cell;
          cell.index = cells_.size();
          cell.os_index = os_i;
          cell.workload_index = wl_i;
          cell.priority_index = pr_i;
          cell.trial = trial;
          cell.seed = CellSeed(spec_.master_seed, os_i, wl_i, spec_.priorities[pr_i], trial);
          cell.config.os = spec_.oses[os_i];
          cell.config.stress = spec_.workloads[wl_i];
          cell.config.thread_priority = spec_.priorities[pr_i];
          cell.config.stress_minutes = spec_.stress_minutes;
          cell.config.warmup_seconds = spec_.warmup_seconds;
          cell.config.seed = cell.seed;
          cell.config.options = spec_.options;
          cell.config.driver = spec_.driver;
          cells_.push_back(std::move(cell));
        }
      }
    }
  }
}

std::size_t ExperimentMatrix::GroupIndex(std::size_t os_index, std::size_t workload_index,
                                         std::size_t priority_index) const {
  return (os_index * spec_.workloads.size() + workload_index) * spec_.priorities.size() +
         priority_index;
}

MatrixResult ExperimentMatrix::Run(
    int jobs, const std::function<void(const MatrixCell&)>& on_cell_done) const {
  using Clock = std::chrono::steady_clock;
  MatrixResult result;
  result.reports.resize(cells_.size());
  std::vector<double> cell_seconds(cells_.size(), 0.0);
  std::mutex progress_mutex;

  const Clock::time_point run_start = Clock::now();
  // Each cell is an isolated single-threaded simulation writing only to its
  // own slot; the pool provides no ordering and needs none.
  runtime::ParallelFor(jobs, cells_.size(), [&](std::size_t i) {
    const Clock::time_point cell_start = Clock::now();
    result.reports[i] = RunLatencyExperiment(cells_[i].config);
    cell_seconds[i] = std::chrono::duration<double>(Clock::now() - cell_start).count();
    if (on_cell_done) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      on_cell_done(cells_[i]);
    }
  });
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - run_start).count();
  for (double seconds : cell_seconds) {
    result.total_cell_seconds += seconds;
  }

  // Merge trials into groups strictly in grid order: histogram bucket adds
  // and floating-point sums see the same sequence whatever `jobs` was.
  result.merged.resize(spec_.group_count());
  for (const MatrixCell& cell : cells_) {
    const LabReport& report = result.reports[cell.index];
    MergedCell& group =
        result.merged[GroupIndex(cell.os_index, cell.workload_index, cell.priority_index)];
    if (group.trials == 0) {
      group.os_name = report.os_name;
      group.workload_name = report.workload_name;
      group.thread_priority = report.thread_priority;
      group.has_interrupt_latency = report.has_interrupt_latency;
      group.usage = report.usage;
    } else {
      assert(stats::MergeableUsage(group.usage, report.usage));
    }
    group.dpc_interrupt.Merge(report.dpc_interrupt);
    group.thread.Merge(report.thread);
    group.thread_interrupt.Merge(report.thread_interrupt);
    group.interrupt.Merge(report.interrupt);
    group.isr_to_dpc.Merge(report.isr_to_dpc);
    group.true_pit_interrupt_latency.Merge(report.true_pit_interrupt_latency);
    // Recover the driver's measured stress-hours so the pooled rate stays
    // total-samples / total-hours, not an average of per-trial rates.
    const double stress_hours = report.samples_per_hour > 0.0
                                    ? static_cast<double>(report.samples) /
                                          report.samples_per_hour
                                    : cell.config.stress_minutes / 60.0;
    group.counters.Merge(stats::SampleCounters{report.samples, stress_hours});
    ++group.trials;
  }
  return result;
}

}  // namespace wdmlat::lab
