#include "src/lab/matrix.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/kernel/profile.h"
#include "src/lab/journal.h"
#include "src/lab/report_io.h"
#include "src/runtime/thread_pool.h"
#include "src/sim/rng.h"
#include "src/workload/stress_profile.h"

namespace wdmlat::lab {

const char* CellStatusName(CellStatus status) {
  switch (status) {
    case CellStatus::kPending:
      return "pending";
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kRestored:
      return "restored";
    case CellStatus::kFailed:
      return "failed";
    case CellStatus::kSkipped:
      return "skipped";
  }
  return "unknown";
}

bool MatrixResult::complete() const {
  if (!error.empty() || statuses.empty()) {
    return false;
  }
  for (const CellStatus status : statuses) {
    if (status != CellStatus::kOk && status != CellStatus::kRestored) {
      return false;
    }
  }
  return true;
}

MatrixSpec PaperMatrix() {
  MatrixSpec spec;
  spec.oses = {kernel::MakeNt4Profile(), kernel::MakeWin98Profile()};
  spec.workloads = {workload::OfficeStress(), workload::WorkstationStress(),
                    workload::GamesStress(), workload::WebStress()};
  spec.priorities = {28, 24};
  return spec;
}

std::uint64_t ExperimentMatrix::CellSeed(std::uint64_t master_seed, std::size_t os_index,
                                         std::size_t workload_index, int priority,
                                         int trial) {
  // Hash chain: XOR each coordinate into the running hash, then push it
  // through a full SplitMix64 avalanche round. Each round is a bijection, so
  // neighbouring cells (which differ in one small coordinate) land on
  // statistically independent xoshiro streams.
  std::uint64_t hash = master_seed;
  const std::uint64_t coords[] = {
      static_cast<std::uint64_t>(os_index), static_cast<std::uint64_t>(workload_index),
      static_cast<std::uint64_t>(priority), static_cast<std::uint64_t>(trial)};
  for (std::uint64_t coord : coords) {
    std::uint64_t state = hash ^ coord;
    hash = sim::SplitMix64(state);
  }
  return hash;
}

ExperimentMatrix::ExperimentMatrix(MatrixSpec spec) : spec_(std::move(spec)) {
  if (spec_.trials < 1) {
    spec_.trials = 1;
  }
  cells_.reserve(spec_.cell_count());
  for (std::size_t os_i = 0; os_i < spec_.oses.size(); ++os_i) {
    for (std::size_t wl_i = 0; wl_i < spec_.workloads.size(); ++wl_i) {
      for (std::size_t pr_i = 0; pr_i < spec_.priorities.size(); ++pr_i) {
        for (int trial = 0; trial < spec_.trials; ++trial) {
          MatrixCell cell;
          cell.index = cells_.size();
          cell.os_index = os_i;
          cell.workload_index = wl_i;
          cell.priority_index = pr_i;
          cell.trial = trial;
          cell.seed = CellSeed(spec_.master_seed, os_i, wl_i, spec_.priorities[pr_i], trial);
          cell.config.os = spec_.oses[os_i];
          cell.config.stress = spec_.workloads[wl_i];
          cell.config.thread_priority = spec_.priorities[pr_i];
          cell.config.stress_minutes = spec_.stress_minutes;
          cell.config.warmup_seconds = spec_.warmup_seconds;
          cell.config.seed = cell.seed;
          cell.config.options = spec_.options;
          cell.config.driver = spec_.driver;
          cell.config.faults = spec_.faults;
          cells_.push_back(std::move(cell));
        }
      }
    }
  }
}

std::size_t ExperimentMatrix::GroupIndex(std::size_t os_index, std::size_t workload_index,
                                         std::size_t priority_index) const {
  return (os_index * spec_.workloads.size() + workload_index) * spec_.priorities.size() +
         priority_index;
}

MatrixResult ExperimentMatrix::Run(
    int jobs, const std::function<void(const MatrixCell&)>& on_cell_done) const {
  MatrixRunOptions options;
  options.jobs = jobs;
  if (on_cell_done) {
    options.on_cell_done = [&on_cell_done](const MatrixCell& cell, CellStatus) {
      on_cell_done(cell);
    };
  }
  return Run(options);
}

MatrixResult ExperimentMatrix::Run(const MatrixRunOptions& options) const {
  using Clock = std::chrono::steady_clock;
  MatrixResult result;
  result.reports.resize(cells_.size());
  result.timings.resize(cells_.size());
  result.statuses.assign(cells_.size(), CellStatus::kPending);
  std::vector<double> cell_seconds(cells_.size(), 0.0);
  // Per-cell registry slots: each cell writes only its own, and slots merge
  // in grid order afterwards — the same slot discipline the reports use, so
  // collecting metrics cannot perturb the determinism contract.
  std::vector<obs::MetricsRegistry> cell_metrics(spec_.collect_metrics ? cells_.size() : 0);
  std::mutex progress_mutex;
  std::map<std::thread::id, int> worker_ids;

  // --- Resume: restore verified cells from an existing journal --------------
  RunJournal journal;
  if (!options.resume_path.empty()) {
    JournalContents contents;
    std::string error;
    if (!LoadJournal(options.resume_path, &spec_, &contents, &error)) {
      result.error = error;
      return result;
    }
    for (const JournalEntry& entry : contents.entries) {
      if (entry.cell >= cells_.size()) {
        result.warnings.push_back("journal entry for out-of-range cell " +
                                  std::to_string(entry.cell) + " ignored");
        continue;
      }
      if (entry.status != "ok") {
        continue;  // failed cells re-run on resume
      }
      if (result.statuses[entry.cell] == CellStatus::kRestored) {
        continue;  // duplicate entry (e.g. a re-run after a stale artifact)
      }
      // Trust nothing the journal says without re-verifying it: the seed must
      // match this spec's derivation and the artifact must re-hash to the
      // recorded checksum and parse back. Anything less re-runs the cell.
      if (entry.seed != cells_[entry.cell].seed) {
        result.warnings.push_back("cell " + std::to_string(entry.cell) +
                                  ": journal seed mismatch; re-running");
        continue;
      }
      std::ifstream in(entry.artifact, std::ios::binary);
      if (!in) {
        result.warnings.push_back("cell " + std::to_string(entry.cell) +
                                  ": artifact unreadable (" + entry.artifact +
                                  "); re-running");
        continue;
      }
      std::ostringstream bytes;
      bytes << in.rdbuf();
      const std::string text = bytes.str();
      if (Fnv1a64(text) != entry.checksum) {
        result.warnings.push_back("cell " + std::to_string(entry.cell) +
                                  ": artifact checksum mismatch (" + entry.artifact +
                                  "); re-running");
        continue;
      }
      std::string parse_error;
      LabReport report;
      if (!ReportFromJson(text, &report, &parse_error)) {
        result.warnings.push_back("cell " + std::to_string(entry.cell) +
                                  ": artifact rejected (" + parse_error + "); re-running");
        continue;
      }
      result.reports[entry.cell] = std::move(report);
      result.statuses[entry.cell] = CellStatus::kRestored;
      ++result.cells_restored;
    }
    if (!journal.OpenAppend(options.resume_path, &error)) {
      result.error = error;
      return result;
    }
  } else if (!options.journal_path.empty()) {
    std::string error;
    if (!journal.Create(options.journal_path, spec_, &error)) {
      result.error = error;
      return result;
    }
  }

  // --- Work list: pending cells, grid order, optionally capped --------------
  std::vector<std::size_t> work;
  work.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (result.statuses[i] == CellStatus::kPending) {
      work.push_back(i);
    }
  }
  if (options.max_cells > 0 && work.size() > options.max_cells) {
    for (std::size_t w = options.max_cells; w < work.size(); ++w) {
      result.statuses[work[w]] = CellStatus::kSkipped;
    }
    result.cells_skipped = work.size() - options.max_cells;
    work.resize(options.max_cells);
  }

  runtime::Supervisor supervisor(options.supervision);
  const bool audits_on = options.audit_every_s > 0.0 || options.audit_fail_cell >= 0;
  const Clock::time_point run_start = Clock::now();
  // Each cell is an isolated single-threaded simulation writing only to its
  // own slot; the pool provides no ordering and needs none.
  runtime::ParallelFor(options.jobs, work.size(), [&](std::size_t w) {
    const std::size_t i = work[w];
    int worker = 0;
    {
      std::lock_guard<std::mutex> lock(progress_mutex);
      worker = static_cast<int>(
          worker_ids.emplace(std::this_thread::get_id(), worker_ids.size()).first->second);
    }
    // Supervision black box: a ring of the cell's recent dispatcher events,
    // read only if the cell fails. Declared at cell scope so the diagnose
    // hook can still read it after the TestSystem inside the body has been
    // torn down by the escaping exception.
    kernel::TraceSession black_box;
    const bool force_violation =
        options.audit_fail_cell >= 0 &&
        i == static_cast<std::size_t>(options.audit_fail_cell);
    const Clock::time_point cell_start = Clock::now();

    const auto body = [&](int attempt, runtime::Watchdog& watchdog) {
      (void)attempt;  // the seed is attempt-invariant by design
      if (options.throw_cell >= 0 && i == static_cast<std::size_t>(options.throw_cell)) {
        throw std::runtime_error("injected cell failure (fixture)");
      }
      LabConfig config = cells_[i].config;
      if (spec_.collect_metrics) {
        config.obs.metrics = &cell_metrics[i];
        config.obs.queue_sample_ms = spec_.queue_sample_ms;
      }
      config.obs.episode_threshold_us = spec_.episode_threshold_us;
      config.obs.max_episodes = spec_.max_episodes;
      config.obs.anatomy = spec_.anatomy;
      config.obs.sketch = spec_.sketch;
      if (i == 0) {
        config.obs.trace_sink = spec_.trace_sink;
      }
      if (watchdog.armed()) {
        config.supervision.watchdog = &watchdog;
      }
      config.supervision.audit_every_s = options.audit_every_s;
      config.supervision.force_audit_violation = force_violation;
      config.supervision.audit_at_end = audits_on;
      if (options.isolate_failures) {
        config.supervision.black_box = &black_box;
      }
      result.reports[i] = RunLatencyExperiment(config);
    };

    std::optional<runtime::CellFailure> failure;
    if (options.isolate_failures) {
      const auto diagnose = [&](runtime::CellFailure& f) {
        std::istringstream summary(black_box.Summary(/*recent_events=*/12));
        std::string line;
        while (std::getline(summary, line)) {
          if (!line.empty()) {
            f.diagnostics.push_back(line);
          }
        }
      };
      failure = supervisor.RunCell(i, cells_[i].seed, body, diagnose);
    } else {
      // Legacy path: exceptions propagate to the caller; a watchdog, when
      // configured, still throws DeadlineExceeded through.
      runtime::Watchdog watchdog;
      watchdog.Arm(options.supervision.cell_timeout_ms);
      body(1, watchdog);
    }

    const Clock::time_point cell_end = Clock::now();
    cell_seconds[i] = std::chrono::duration<double>(cell_end - cell_start).count();
    result.timings[i] = MatrixResult::CellTiming{
        worker, std::chrono::duration<double>(cell_start - run_start).count(),
        std::chrono::duration<double>(cell_end - run_start).count()};
    result.statuses[i] = failure ? CellStatus::kFailed : CellStatus::kOk;

    // Checkpoint: artifact file first (no contention — per-cell path), then
    // the journal line under the lock. A kill between the two leaves an
    // orphan artifact and no journal line: the cell re-runs, correctly.
    JournalEntry entry;
    entry.cell = i;
    entry.seed = cells_[i].seed;
    if (!failure && journal.is_open()) {
      const std::string text = ReportToJson(result.reports[i]);
      const std::string artifact = journal.ArtifactPath(i);
      std::ofstream artifact_out(artifact, std::ios::trunc | std::ios::binary);
      artifact_out << text;
      artifact_out.flush();
      entry.status = "ok";
      entry.checksum = Fnv1a64(text);
      entry.artifact = artifact;
      entry.samples = result.reports[i].samples;
      if (!artifact_out) {
        entry.status = "failed";
        entry.taxonomy = runtime::FailureKindName(runtime::FailureKind::kHostTransient);
        entry.message = "artifact write failed: " + artifact;
      }
    } else if (failure) {
      entry.status = "failed";
      entry.taxonomy = runtime::FailureKindName(failure->kind);
      entry.message = failure->message.substr(0, failure->message.find('\n'));
      entry.attempts = failure->attempts;
    }

    {
      std::lock_guard<std::mutex> lock(progress_mutex);
      ++result.cells_executed;
      if (journal.is_open()) {
        std::string journal_error;
        if (!journal.Append(entry, &journal_error)) {
          result.warnings.push_back(journal_error);
        }
      }
      if (failure) {
        result.failures.push_back(*failure);
        if (options.on_cell_failed) {
          options.on_cell_failed(result.failures.back());
        }
      }
      if (options.on_cell_done) {
        options.on_cell_done(cells_[i], result.statuses[i]);
      }
    }
  });
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - run_start).count();
  result.workers_observed = static_cast<int>(worker_ids.size());
  result.retries = supervisor.retries();
  for (double seconds : cell_seconds) {
    result.total_cell_seconds += seconds;
  }

  // Merge trials into groups strictly in grid order: histogram bucket adds
  // and floating-point sums see the same sequence whatever `jobs` was.
  // Only completed cells (kOk / kRestored) merge; failed or skipped cells
  // contribute nothing rather than skewing the pooled distributions.
  result.merged.resize(spec_.group_count());
  // Conservation ledger for the post-merge audit: the merged histogram of a
  // group must hold exactly the sum of its trials' sample counts.
  std::vector<std::uint64_t> expected_thread_counts(spec_.group_count(), 0);
  std::vector<std::uint64_t> expected_dpc_counts(spec_.group_count(), 0);
  for (const MatrixCell& cell : cells_) {
    const CellStatus status = result.statuses[cell.index];
    if (status != CellStatus::kOk && status != CellStatus::kRestored) {
      continue;
    }
    const LabReport& report = result.reports[cell.index];
    const std::size_t group_index =
        GroupIndex(cell.os_index, cell.workload_index, cell.priority_index);
    MergedCell& group = result.merged[group_index];
    if (group.trials == 0) {
      group.os_name = report.os_name;
      group.workload_name = report.workload_name;
      group.thread_priority = report.thread_priority;
      group.has_interrupt_latency = report.has_interrupt_latency;
      group.usage = report.usage;
    } else {
      assert(stats::MergeableUsage(group.usage, report.usage));
    }
    group.dpc_interrupt.Merge(report.dpc_interrupt);
    group.thread.Merge(report.thread);
    group.thread_interrupt.Merge(report.thread_interrupt);
    group.interrupt.Merge(report.interrupt);
    group.isr_to_dpc.Merge(report.isr_to_dpc);
    group.true_pit_interrupt_latency.Merge(report.true_pit_interrupt_latency);
    expected_thread_counts[group_index] += report.thread.count();
    expected_dpc_counts[group_index] += report.dpc_interrupt.count();
    // Recover the driver's measured stress-hours so the pooled rate stays
    // total-samples / total-hours, not an average of per-trial rates.
    const double stress_hours = report.samples_per_hour > 0.0
                                    ? static_cast<double>(report.samples) /
                                          report.samples_per_hour
                                    : cell.config.stress_minutes / 60.0;
    group.counters.Merge(stats::SampleCounters{report.samples, stress_hours});
    group.fault_activations += report.fault_activations;
    group.episodes += report.episodes.size();
    for (const obs::EpisodeSummary& episode : report.episodes) {
      group.episodes_attributed += episode.attributed ? 1 : 0;
      group.episode_module_matches += episode.module_match ? 1 : 0;
    }
    group.thread_sketch.Merge(report.thread_sketch);
    group.anatomy_episodes += report.anatomy.size();
    for (const obs::AnatomyEpisode& episode : report.anatomy) {
      for (std::size_t s = 0; s < obs::kAnatomyStageCount; ++s) {
        group.anatomy_stage_cycles[s] += episode.stage_cycles[s];
      }
    }
    ++group.trials;
  }
  for (std::size_t g = 0; g < result.merged.size(); ++g) {
    const MergedCell& group = result.merged[g];
    if (group.thread.count() != expected_thread_counts[g] ||
        group.dpc_interrupt.count() != expected_dpc_counts[g]) {
      std::ostringstream violation;
      violation << "group " << g << " (" << group.os_name << "/" << group.workload_name
                << "/prio " << group.thread_priority
                << "): merged counts != sum of trial counts (thread "
                << group.thread.count() << " vs " << expected_thread_counts[g] << ", dpc "
                << group.dpc_interrupt.count() << " vs " << expected_dpc_counts[g] << ")";
      result.merge_violations.push_back(violation.str());
    }
  }

  if (spec_.collect_metrics) {
    // Grid order again, so counter sums and histogram buckets accumulate in
    // a jobs-independent sequence.
    for (const MatrixCell& cell : cells_) {
      result.metrics.Merge(cell_metrics[cell.index]);
    }
    // Host-side view of the run itself (wall clock, so not part of the
    // determinism contract — these describe the runner, not the simulation).
    result.metrics.Add("matrix.cells", static_cast<double>(cells_.size()));
    for (const MatrixCell& cell : cells_) {
      result.metrics.Observe("matrix.cell_wall_ms", cell_seconds[cell.index] * 1e3);
    }
    result.metrics.Set("matrix.wall_seconds", result.wall_seconds);
    result.metrics.Set("matrix.total_cell_seconds", result.total_cell_seconds);
    result.metrics.Set("matrix.speedup", result.Speedup());
    result.metrics.Set("matrix.workers", static_cast<double>(result.workers_observed));
    result.metrics.Set("matrix.utilization", result.Utilization());
  }
  return result;
}

void AppendHostTrace(obs::ChromeTraceWriter& writer, const ExperimentMatrix& matrix,
                     const MatrixResult& result) {
  writer.SetProcessName(obs::ChromeTraceWriter::kHostPid, "matrix runner (host)");
  const std::size_t n = std::min(matrix.cells().size(), result.timings.size());
  std::vector<bool> worker_named;
  for (std::size_t i = 0; i < n; ++i) {
    const MatrixCell& cell = matrix.cells()[i];
    const MatrixResult::CellTiming& timing = result.timings[i];
    // Host worker tracks are numbered from 1; tid 0 reads as "unknown".
    const int tid = timing.worker + 1;
    if (static_cast<std::size_t>(timing.worker) >= worker_named.size()) {
      worker_named.resize(timing.worker + 1, false);
    }
    if (!worker_named[timing.worker]) {
      char track[32];
      std::snprintf(track, sizeof(track), "worker %d", timing.worker);
      writer.SetThreadName(obs::ChromeTraceWriter::kHostPid, tid, track);
      worker_named[timing.worker] = true;
    }
    const LabConfig& config = cell.config;
    const std::string name = config.os.name + " / " + config.stress.name + " / prio " +
                             std::to_string(config.thread_priority);
    writer.CompleteSlice(
        obs::ChromeTraceWriter::kHostPid, tid, timing.start_s * 1e6,
        (timing.end_s - timing.start_s) * 1e6, name,
        {{"seed", std::to_string(cell.seed)}},
        {{"trial", static_cast<double>(cell.trial)},
         {"samples", static_cast<double>(result.reports[i].samples)}});
  }
}

}  // namespace wdmlat::lab
