#include "src/lab/matrix.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "src/kernel/profile.h"
#include "src/runtime/thread_pool.h"
#include "src/sim/rng.h"
#include "src/workload/stress_profile.h"

namespace wdmlat::lab {

MatrixSpec PaperMatrix() {
  MatrixSpec spec;
  spec.oses = {kernel::MakeNt4Profile(), kernel::MakeWin98Profile()};
  spec.workloads = {workload::OfficeStress(), workload::WorkstationStress(),
                    workload::GamesStress(), workload::WebStress()};
  spec.priorities = {28, 24};
  return spec;
}

std::uint64_t ExperimentMatrix::CellSeed(std::uint64_t master_seed, std::size_t os_index,
                                         std::size_t workload_index, int priority,
                                         int trial) {
  // Hash chain: XOR each coordinate into the running hash, then push it
  // through a full SplitMix64 avalanche round. Each round is a bijection, so
  // neighbouring cells (which differ in one small coordinate) land on
  // statistically independent xoshiro streams.
  std::uint64_t hash = master_seed;
  const std::uint64_t coords[] = {
      static_cast<std::uint64_t>(os_index), static_cast<std::uint64_t>(workload_index),
      static_cast<std::uint64_t>(priority), static_cast<std::uint64_t>(trial)};
  for (std::uint64_t coord : coords) {
    std::uint64_t state = hash ^ coord;
    hash = sim::SplitMix64(state);
  }
  return hash;
}

ExperimentMatrix::ExperimentMatrix(MatrixSpec spec) : spec_(std::move(spec)) {
  if (spec_.trials < 1) {
    spec_.trials = 1;
  }
  cells_.reserve(spec_.cell_count());
  for (std::size_t os_i = 0; os_i < spec_.oses.size(); ++os_i) {
    for (std::size_t wl_i = 0; wl_i < spec_.workloads.size(); ++wl_i) {
      for (std::size_t pr_i = 0; pr_i < spec_.priorities.size(); ++pr_i) {
        for (int trial = 0; trial < spec_.trials; ++trial) {
          MatrixCell cell;
          cell.index = cells_.size();
          cell.os_index = os_i;
          cell.workload_index = wl_i;
          cell.priority_index = pr_i;
          cell.trial = trial;
          cell.seed = CellSeed(spec_.master_seed, os_i, wl_i, spec_.priorities[pr_i], trial);
          cell.config.os = spec_.oses[os_i];
          cell.config.stress = spec_.workloads[wl_i];
          cell.config.thread_priority = spec_.priorities[pr_i];
          cell.config.stress_minutes = spec_.stress_minutes;
          cell.config.warmup_seconds = spec_.warmup_seconds;
          cell.config.seed = cell.seed;
          cell.config.options = spec_.options;
          cell.config.driver = spec_.driver;
          cell.config.faults = spec_.faults;
          cells_.push_back(std::move(cell));
        }
      }
    }
  }
}

std::size_t ExperimentMatrix::GroupIndex(std::size_t os_index, std::size_t workload_index,
                                         std::size_t priority_index) const {
  return (os_index * spec_.workloads.size() + workload_index) * spec_.priorities.size() +
         priority_index;
}

MatrixResult ExperimentMatrix::Run(
    int jobs, const std::function<void(const MatrixCell&)>& on_cell_done) const {
  using Clock = std::chrono::steady_clock;
  MatrixResult result;
  result.reports.resize(cells_.size());
  result.timings.resize(cells_.size());
  std::vector<double> cell_seconds(cells_.size(), 0.0);
  // Per-cell registry slots: each cell writes only its own, and slots merge
  // in grid order afterwards — the same slot discipline the reports use, so
  // collecting metrics cannot perturb the determinism contract.
  std::vector<obs::MetricsRegistry> cell_metrics(spec_.collect_metrics ? cells_.size() : 0);
  std::mutex progress_mutex;
  std::map<std::thread::id, int> worker_ids;

  const Clock::time_point run_start = Clock::now();
  // Each cell is an isolated single-threaded simulation writing only to its
  // own slot; the pool provides no ordering and needs none.
  runtime::ParallelFor(jobs, cells_.size(), [&](std::size_t i) {
    LabConfig config = cells_[i].config;
    if (spec_.collect_metrics) {
      config.obs.metrics = &cell_metrics[i];
      config.obs.queue_sample_ms = spec_.queue_sample_ms;
    }
    config.obs.episode_threshold_us = spec_.episode_threshold_us;
    config.obs.max_episodes = spec_.max_episodes;
    if (i == 0) {
      config.obs.trace_sink = spec_.trace_sink;
    }
    int worker = 0;
    {
      std::lock_guard<std::mutex> lock(progress_mutex);
      worker = static_cast<int>(
          worker_ids.emplace(std::this_thread::get_id(), worker_ids.size()).first->second);
    }
    const Clock::time_point cell_start = Clock::now();
    result.reports[i] = RunLatencyExperiment(config);
    const Clock::time_point cell_end = Clock::now();
    cell_seconds[i] = std::chrono::duration<double>(cell_end - cell_start).count();
    result.timings[i] = MatrixResult::CellTiming{
        worker, std::chrono::duration<double>(cell_start - run_start).count(),
        std::chrono::duration<double>(cell_end - run_start).count()};
    if (on_cell_done) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      on_cell_done(cells_[i]);
    }
  });
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - run_start).count();
  result.workers_observed = static_cast<int>(worker_ids.size());
  for (double seconds : cell_seconds) {
    result.total_cell_seconds += seconds;
  }

  // Merge trials into groups strictly in grid order: histogram bucket adds
  // and floating-point sums see the same sequence whatever `jobs` was.
  result.merged.resize(spec_.group_count());
  for (const MatrixCell& cell : cells_) {
    const LabReport& report = result.reports[cell.index];
    MergedCell& group =
        result.merged[GroupIndex(cell.os_index, cell.workload_index, cell.priority_index)];
    if (group.trials == 0) {
      group.os_name = report.os_name;
      group.workload_name = report.workload_name;
      group.thread_priority = report.thread_priority;
      group.has_interrupt_latency = report.has_interrupt_latency;
      group.usage = report.usage;
    } else {
      assert(stats::MergeableUsage(group.usage, report.usage));
    }
    group.dpc_interrupt.Merge(report.dpc_interrupt);
    group.thread.Merge(report.thread);
    group.thread_interrupt.Merge(report.thread_interrupt);
    group.interrupt.Merge(report.interrupt);
    group.isr_to_dpc.Merge(report.isr_to_dpc);
    group.true_pit_interrupt_latency.Merge(report.true_pit_interrupt_latency);
    // Recover the driver's measured stress-hours so the pooled rate stays
    // total-samples / total-hours, not an average of per-trial rates.
    const double stress_hours = report.samples_per_hour > 0.0
                                    ? static_cast<double>(report.samples) /
                                          report.samples_per_hour
                                    : cell.config.stress_minutes / 60.0;
    group.counters.Merge(stats::SampleCounters{report.samples, stress_hours});
    group.fault_activations += report.fault_activations;
    group.episodes += report.episodes.size();
    for (const obs::EpisodeSummary& episode : report.episodes) {
      group.episodes_attributed += episode.attributed ? 1 : 0;
      group.episode_module_matches += episode.module_match ? 1 : 0;
    }
    ++group.trials;
  }

  if (spec_.collect_metrics) {
    // Grid order again, so counter sums and histogram buckets accumulate in
    // a jobs-independent sequence.
    for (const MatrixCell& cell : cells_) {
      result.metrics.Merge(cell_metrics[cell.index]);
    }
    // Host-side view of the run itself (wall clock, so not part of the
    // determinism contract — these describe the runner, not the simulation).
    result.metrics.Add("matrix.cells", static_cast<double>(cells_.size()));
    for (const MatrixCell& cell : cells_) {
      result.metrics.Observe("matrix.cell_wall_ms", cell_seconds[cell.index] * 1e3);
    }
    result.metrics.Set("matrix.wall_seconds", result.wall_seconds);
    result.metrics.Set("matrix.total_cell_seconds", result.total_cell_seconds);
    result.metrics.Set("matrix.speedup", result.Speedup());
    result.metrics.Set("matrix.workers", static_cast<double>(result.workers_observed));
    result.metrics.Set("matrix.utilization", result.Utilization());
  }
  return result;
}

void AppendHostTrace(obs::ChromeTraceWriter& writer, const ExperimentMatrix& matrix,
                     const MatrixResult& result) {
  writer.SetProcessName(obs::ChromeTraceWriter::kHostPid, "matrix runner (host)");
  const std::size_t n = std::min(matrix.cells().size(), result.timings.size());
  std::vector<bool> worker_named;
  for (std::size_t i = 0; i < n; ++i) {
    const MatrixCell& cell = matrix.cells()[i];
    const MatrixResult::CellTiming& timing = result.timings[i];
    // Host worker tracks are numbered from 1; tid 0 reads as "unknown".
    const int tid = timing.worker + 1;
    if (static_cast<std::size_t>(timing.worker) >= worker_named.size()) {
      worker_named.resize(timing.worker + 1, false);
    }
    if (!worker_named[timing.worker]) {
      char track[32];
      std::snprintf(track, sizeof(track), "worker %d", timing.worker);
      writer.SetThreadName(obs::ChromeTraceWriter::kHostPid, tid, track);
      worker_named[timing.worker] = true;
    }
    const LabConfig& config = cell.config;
    const std::string name = config.os.name + " / " + config.stress.name + " / prio " +
                             std::to_string(config.thread_priority);
    writer.CompleteSlice(
        obs::ChromeTraceWriter::kHostPid, tid, timing.start_s * 1e6,
        (timing.end_s - timing.start_s) * 1e6, name,
        {{"seed", std::to_string(cell.seed)}},
        {{"trial", static_cast<double>(cell.trial)},
         {"samples", static_cast<double>(result.reports[i].samples)}});
  }
}

}  // namespace wdmlat::lab
