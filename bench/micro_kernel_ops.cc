// Supporting microbenchmarks (google-benchmark): wall-clock cost of the
// simulator's kernel primitives on both OS personalities, plus raw engine
// throughput. These are *simulator* performance numbers (how fast virtual
// time runs), used to size experiment durations — the latency results
// themselves are virtual-time measurements and do not depend on host speed.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "src/drivers/latency_driver.h"
#include "src/kernel/kernel.h"
#include "src/kernel/profile.h"
#include "src/kernel/smp.h"
#include "src/lab/test_system.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/stats/histogram.h"
#include "src/workload/stress_load.h"
#include "src/workload/stress_profile.h"

namespace {

using namespace wdmlat;

void BM_EngineScheduleFire(benchmark::State& state) {
  sim::Engine engine;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    engine.ScheduleAfter(100, [&] { ++counter; });
    engine.Step();
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_EngineCancelledEvent(benchmark::State& state) {
  sim::Engine engine;
  for (auto _ : state) {
    sim::EventHandle handle = engine.ScheduleAfter(100, [] {});
    handle.Cancel();
    engine.Step();
  }
}
BENCHMARK(BM_EngineCancelledEvent);

// The dispatcher's timer churn: every resume cancels the previous completion
// and schedules a new one, so most scheduled events die without firing. This
// exercises the stale-entry purge and the bulk compaction.
void BM_EngineCancelHeavy(benchmark::State& state) {
  sim::Engine engine;
  sim::EventHandle completion;
  std::uint64_t fired = 0;
  int step_phase = 0;
  for (auto _ : state) {
    completion.Cancel();
    completion = engine.ScheduleAfter(100, [&] { ++fired; });
    if (++step_phase == 3) {
      step_phase = 0;
      engine.Step();
    }
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EngineCancelHeavy);

// The ladder queue's headline case: a burst of same-instant expirations (a
// PIT tick's worth of due timers) collapses into one sorted drain batch and
// fires by cursor increment instead of per-event heap pops. Reported time is
// per burst; items/s gives the per-event rate.
void BM_EngineBatchFire(benchmark::State& state) {
  sim::Engine engine;
  std::uint64_t counter = 0;
  constexpr int kBurst = 64;
  for (auto _ : state) {
    const sim::Cycles tick = engine.now() + 1000;
    for (int i = 0; i < kBurst; ++i) {
      engine.ScheduleAt(tick, [&] { ++counter; });
    }
    engine.RunUntil(tick);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBurst);
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_EngineBatchFire);

// Per-sample histogram bucketing cost (runs once per measured latency).
void BM_HistogramRecord(benchmark::State& state) {
  // Log-uniform samples across the resolvable range, precomputed so the
  // benchmark measures RecordUs, not the RNG.
  sim::Rng rng(42);
  std::vector<double> samples(4096);
  for (double& us : samples) {
    us = stats::LatencyHistogram::kMinUs *
         std::exp2(rng.Uniform(0.0, static_cast<double>(stats::LatencyHistogram::kOctaves)));
  }
  stats::LatencyHistogram hist;
  std::size_t i = 0;
  for (auto _ : state) {
    hist.RecordUs(samples[i]);
    if (++i == samples.size()) {
      i = 0;
    }
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramRecord);

// One full virtual second of an idle kernel (clock ticks, worker thread).
template <kernel::KernelProfile (*MakeProfile)()>
void BM_IdleKernelSecond(benchmark::State& state) {
  for (auto _ : state) {
    lab::TestSystemOptions options;
    options.kernel_self_noise = false;
    lab::TestSystem system(MakeProfile(), 42, options);
    system.RunFor(1.0);
    benchmark::DoNotOptimize(system.kernel().dispatcher().interrupts_accepted());
  }
}
BENCHMARK(BM_IdleKernelSecond<kernel::MakeNt4Profile>)->Name("BM_IdleKernelSecond_NT4");
BENCHMARK(BM_IdleKernelSecond<kernel::MakeWin98Profile>)->Name("BM_IdleKernelSecond_Win98");

// One virtual second of the full measurement stack under the games load —
// the unit of the Figure 4 experiment grid.
template <kernel::KernelProfile (*MakeProfile)()>
void BM_LoadedMeasurementSecond(benchmark::State& state) {
  for (auto _ : state) {
    lab::TestSystem system(MakeProfile(), 42);
    workload::StressLoad load(system.deps(), workload::GamesStress(), system.ForkRng());
    drivers::LatencyDriver driver(system.kernel(), drivers::LatencyDriver::Config{});
    load.Start();
    driver.Start();
    system.RunFor(1.0);
    benchmark::DoNotOptimize(driver.sample_count());
  }
}
BENCHMARK(BM_LoadedMeasurementSecond<kernel::MakeNt4Profile>)
    ->Name("BM_LoadedMeasurementSecond_NT4");
BENCHMARK(BM_LoadedMeasurementSecond<kernel::MakeWin98Profile>)
    ->Name("BM_LoadedMeasurementSecond_Win98");

// DPC enqueue + dispatch round trip (virtual microseconds of kernel work,
// host nanoseconds of simulation).
void BM_DpcRoundTrip(benchmark::State& state) {
  lab::TestSystemOptions options;
  options.kernel_self_noise = false;
  lab::TestSystem system(kernel::MakeNt4Profile(), 42, options);
  std::uint64_t fired = 0;
  kernel::KDpc dpc([&] { ++fired; }, sim::DurationDist::Constant(1.0),
                   kernel::Label{"BM", "_dpc"});
  for (auto _ : state) {
    system.kernel().KeInsertQueueDpc(&dpc);
    system.RunFor(0.0001);
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_DpcRoundTrip);

// Thread wake + context switch round trip.
void BM_ThreadWakeRoundTrip(benchmark::State& state) {
  lab::TestSystemOptions options;
  options.kernel_self_noise = false;
  lab::TestSystem system(kernel::MakeNt4Profile(), 42, options);
  kernel::KEvent event;
  std::uint64_t wakes = 0;
  std::function<void()> loop = [&] {
    system.kernel().Wait(&event, [&] {
      ++wakes;
      loop();
    });
  };
  system.kernel().PsCreateSystemThread("bm", 28, [&] { loop(); });
  system.RunFor(0.001);
  for (auto _ : state) {
    system.kernel().KeSetEvent(&event);
    system.RunFor(0.0001);
  }
  benchmark::DoNotOptimize(wakes);
}
BENCHMARK(BM_ThreadWakeRoundTrip);

// Cross-core wake on a 2-core SMP machine: the woken thread is pinned off
// the boot core, so every KeSetEvent (engine context = core 0) rides a
// reschedule IPI to core 1 — the full SendIpi/deliver/dispatch path per
// iteration. Compare against BM_ThreadWakeRoundTrip for the SMP overhead.
void BM_SmpDispatch(benchmark::State& state) {
  lab::TestSystemOptions options;
  options.kernel_self_noise = false;
  lab::TestSystem system(kernel::MakeNt4SmpProfile(2, false), 42, options);
  kernel::KEvent event;
  std::uint64_t wakes = 0;
  std::function<void()> loop = [&] {
    system.kernel().Wait(&event, [&] {
      ++wakes;
      loop();
    });
  };
  kernel::KThread* thread =
      system.kernel().PsCreateSystemThread("bm_smp", 28, [&] { loop(); });
  system.kernel().KeSetAffinityThread(thread, 0b10);  // pin to core 1
  system.RunFor(0.001);
  for (auto _ : state) {
    system.kernel().KeSetEvent(&event);
    system.RunFor(0.0001);
  }
  benchmark::DoNotOptimize(wakes);
}
BENCHMARK(BM_SmpDispatch);

// Spinlock handoff: each iteration parks an injected hold on the global
// dispatcher lock, then wakes a pinned thread — the wake defers behind the
// hold and is granted FIFO at release, so the loop measures the simulator's
// contention bookkeeping (waiter queue, spin accounting, deferred grant).
void BM_SpinlockHandoff(benchmark::State& state) {
  lab::TestSystemOptions options;
  options.kernel_self_noise = false;
  lab::TestSystem system(kernel::MakeNt4SmpProfile(2, false), 42, options);
  kernel::KEvent event;
  std::uint64_t wakes = 0;
  std::function<void()> loop = [&] {
    system.kernel().Wait(&event, [&] {
      ++wakes;
      loop();
    });
  };
  kernel::KThread* thread =
      system.kernel().PsCreateSystemThread("bm_lock", 28, [&] { loop(); });
  system.kernel().KeSetAffinityThread(thread, 0b10);
  system.RunFor(0.001);
  for (auto _ : state) {
    system.kernel().smp()->InjectLockHold("dispatcher", sim::UsToCycles(5.0),
                                          kernel::Label{"BM", "_lockhog"});
    system.kernel().KeSetEvent(&event);
    system.RunFor(0.0001);
  }
  benchmark::DoNotOptimize(wakes);
}
BENCHMARK(BM_SpinlockHandoff);

}  // namespace

BENCHMARK_MAIN();
