// Supporting microbenchmarks (google-benchmark): wall-clock cost of the
// simulator's kernel primitives on both OS personalities, plus raw engine
// throughput. These are *simulator* performance numbers (how fast virtual
// time runs), used to size experiment durations — the latency results
// themselves are virtual-time measurements and do not depend on host speed.

#include <benchmark/benchmark.h>

#include "src/drivers/latency_driver.h"
#include "src/kernel/kernel.h"
#include "src/kernel/profile.h"
#include "src/lab/test_system.h"
#include "src/sim/engine.h"
#include "src/workload/stress_load.h"
#include "src/workload/stress_profile.h"

namespace {

using namespace wdmlat;

void BM_EngineScheduleFire(benchmark::State& state) {
  sim::Engine engine;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    engine.ScheduleAfter(100, [&] { ++counter; });
    engine.Step();
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_EngineCancelledEvent(benchmark::State& state) {
  sim::Engine engine;
  for (auto _ : state) {
    sim::EventHandle handle = engine.ScheduleAfter(100, [] {});
    handle.Cancel();
    engine.Step();
  }
}
BENCHMARK(BM_EngineCancelledEvent);

// One full virtual second of an idle kernel (clock ticks, worker thread).
template <kernel::KernelProfile (*MakeProfile)()>
void BM_IdleKernelSecond(benchmark::State& state) {
  for (auto _ : state) {
    lab::TestSystemOptions options;
    options.kernel_self_noise = false;
    lab::TestSystem system(MakeProfile(), 42, options);
    system.RunFor(1.0);
    benchmark::DoNotOptimize(system.kernel().dispatcher().interrupts_accepted());
  }
}
BENCHMARK(BM_IdleKernelSecond<kernel::MakeNt4Profile>)->Name("BM_IdleKernelSecond_NT4");
BENCHMARK(BM_IdleKernelSecond<kernel::MakeWin98Profile>)->Name("BM_IdleKernelSecond_Win98");

// One virtual second of the full measurement stack under the games load —
// the unit of the Figure 4 experiment grid.
template <kernel::KernelProfile (*MakeProfile)()>
void BM_LoadedMeasurementSecond(benchmark::State& state) {
  for (auto _ : state) {
    lab::TestSystem system(MakeProfile(), 42);
    workload::StressLoad load(system.deps(), workload::GamesStress(), system.ForkRng());
    drivers::LatencyDriver driver(system.kernel(), drivers::LatencyDriver::Config{});
    load.Start();
    driver.Start();
    system.RunFor(1.0);
    benchmark::DoNotOptimize(driver.sample_count());
  }
}
BENCHMARK(BM_LoadedMeasurementSecond<kernel::MakeNt4Profile>)
    ->Name("BM_LoadedMeasurementSecond_NT4");
BENCHMARK(BM_LoadedMeasurementSecond<kernel::MakeWin98Profile>)
    ->Name("BM_LoadedMeasurementSecond_Win98");

// DPC enqueue + dispatch round trip (virtual microseconds of kernel work,
// host nanoseconds of simulation).
void BM_DpcRoundTrip(benchmark::State& state) {
  lab::TestSystemOptions options;
  options.kernel_self_noise = false;
  lab::TestSystem system(kernel::MakeNt4Profile(), 42, options);
  std::uint64_t fired = 0;
  kernel::KDpc dpc([&] { ++fired; }, sim::DurationDist::Constant(1.0),
                   kernel::Label{"BM", "_dpc"});
  for (auto _ : state) {
    system.kernel().KeInsertQueueDpc(&dpc);
    system.RunFor(0.0001);
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_DpcRoundTrip);

// Thread wake + context switch round trip.
void BM_ThreadWakeRoundTrip(benchmark::State& state) {
  lab::TestSystemOptions options;
  options.kernel_self_noise = false;
  lab::TestSystem system(kernel::MakeNt4Profile(), 42, options);
  kernel::KEvent event;
  std::uint64_t wakes = 0;
  std::function<void()> loop = [&] {
    system.kernel().Wait(&event, [&] {
      ++wakes;
      loop();
    });
  };
  system.kernel().PsCreateSystemThread("bm", 28, [&] { loop(); });
  system.RunFor(0.001);
  for (auto _ : state) {
    system.kernel().KeSetEvent(&event);
    system.RunFor(0.0001);
  }
  benchmark::DoNotOptimize(wakes);
}
BENCHMARK(BM_ThreadWakeRoundTrip);

}  // namespace

BENCHMARK_MAIN();
