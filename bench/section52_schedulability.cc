// Reproduction of the Section 5.2 procedure: "Schedulability Analysis on a
// Non-Real-Time OS."
//
// 1. Measure the latency distribution (our Table 3 data).
// 2. Choose a worst case as a function of the permissible error rate (one
//    dropped buffer per hour for a soft modem; one per 5-10 minutes for low
//    latency audio).
// 3. Feed the resulting "pseudo worst case" as a blocking term into a
//    standard fixed-priority schedulability analysis (a PERTS-style
//    response-time analysis).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/rma.h"
#include "src/kernel/profile.h"
#include "src/lab/lab.h"
#include "src/report/ascii_table.h"
#include "src/workload/stress_profile.h"

int main() {
  using namespace wdmlat;
  const double minutes = bench::MeasurementMinutes(15.0);
  std::printf(
      "Section 5.2 reproduction: schedulability analysis with pseudo worst-case\n"
      "OS latency, measured under the 3D games load. %.1f virtual minutes per OS.\n\n",
      minutes);

  auto measure = [&](kernel::KernelProfile os) {
    lab::LabConfig config;
    config.os = std::move(os);
    config.stress = workload::GamesStress();
    config.thread_priority = 28;
    config.stress_minutes = minutes;
    config.seed = bench::BenchSeed();
    return lab::RunLatencyExperiment(config);
  };
  std::printf("  measuring Windows 98...\n");
  const lab::LabReport w98 = measure(kernel::MakeWin98Profile());
  std::printf("  measuring Windows NT 4.0...\n\n");
  const lab::LabReport nt = measure(kernel::MakeNt4Profile());

  // The task set: a soft modem datapump (16 ms cycle, 25% CPU => 4 ms), a
  // low-latency audio renderer and a video decoder.
  std::vector<analysis::Task> tasks{
      {"soft modem datapump", 16.0, 4.0, 0.0},
      {"low latency audio", 10.0, 1.5, 0.0},
      {"soft video decode", 33.0, 8.0, 0.0},
  };

  report::AsciiTable table({"OS / mode", "Error budget", "Pseudo worst case (ms)",
                            "Utilization", "Schedulable?", "Worst response (ms)"});
  struct Case {
    const char* name;
    const stats::LatencyHistogram* latency;
    double samples_per_hour;
    double errors_per_hour;
    const char* budget;
  };
  const std::vector<Case> cases{
      {"Win98, thread datapump", &w98.thread_interrupt, w98.samples_per_hour, 1.0,
       "1 drop/hour"},
      {"Win98, thread datapump", &w98.thread_interrupt, w98.samples_per_hour, 12.0,
       "1 drop/5 min"},
      {"Win98, DPC datapump", &w98.dpc_interrupt, w98.samples_per_hour, 1.0, "1 drop/hour"},
      {"NT 4.0, thread datapump", &nt.thread_interrupt, nt.samples_per_hour, 1.0,
       "1 drop/hour"},
      {"NT 4.0, DPC datapump", &nt.dpc_interrupt, nt.samples_per_hour, 1.0, "1 drop/hour"},
  };
  for (const Case& c : cases) {
    // The datapump activates every 16 ms => 225,000 activations per hour.
    const double activations_per_hour = 3600.0 * 1000.0 / 16.0;
    (void)c.samples_per_hour;
    const double pseudo =
        analysis::PseudoWorstCaseMs(*c.latency, c.errors_per_hour, activations_per_hour);
    const auto result = analysis::AnalyzeRateMonotonic(tasks, pseudo);
    double worst_response = 0.0;
    for (const auto& response : result.responses) {
      worst_response = std::max(worst_response, response.response_ms);
    }
    table.AddRow({std::string(c.name), c.budget, report::AsciiTable::Fmt(pseudo, 2),
                  report::AsciiTable::Fmt(result.utilization, 2),
                  result.schedulable ? "yes" : "NO",
                  report::AsciiTable::Fmt(worst_response, 1)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape (Section 5/6): the Windows 98 thread-based datapump is\n"
      "unschedulable at tight error budgets — \"many compute-intensive drivers\n"
      "will be forced to use DPCs on Windows 98, whereas on Windows NT\n"
      "high-priority, real-time kernel mode threads should provide service\n"
      "indistinguishable from DPCs.\"\n");
  return 0;
}
