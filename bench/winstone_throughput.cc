// Reproduction of the Section 4.2 throughput check: "To verify that
// throughput-based benchmarks would not reveal the variation in real-time
// performance that we see in our plots, we ran the Business Winstone 97
// benchmark on Windows 98 and on Windows NT 4.0 [...] the average delta
// between like scores was 10% and the maximum delta was 20%."
//
// We run the Winstone-style script to completion on both OS personalities
// over several seeds and report completion-time deltas next to the
// latency-metric deltas from the same systems — the punchline being that
// throughput differs by percents while latency differs by orders of
// magnitude.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/profile.h"
#include "src/lab/lab.h"
#include "src/lab/test_system.h"
#include "src/report/ascii_table.h"
#include "src/workload/stress_profile.h"
#include "src/workload/winstone.h"

namespace {

using namespace wdmlat;

double RunScript(kernel::KernelProfile os, std::uint64_t seed) {
  lab::TestSystem system(std::move(os), seed);
  // The full Business Winstone 97 suite: each of the eight applications is
  // installed, run through its user actions at MS-Test speed, uninstalled.
  workload::WinstoneSuite suite(system.deps(), workload::BusinessWinstone97(),
                                system.ForkRng());
  double elapsed = 0.0;
  suite.Start([&](double seconds) { elapsed = seconds; });
  system.RunFor(900.0);
  return elapsed;
}

}  // namespace

int main() {
  std::printf(
      "Section 4.2 throughput reproduction: Business-Winstone-style script\n"
      "completion time, Windows NT 4.0 vs Windows 98.\n\n");

  const int kRuns = 5;
  report::AsciiTable table({"Run", "NT 4.0 (s)", "Windows 98 (s)", "Delta"});
  double sum_delta = 0.0;
  double max_delta = 0.0;
  for (int i = 0; i < kRuns; ++i) {
    const std::uint64_t seed = wdmlat::bench::BenchSeed() + i;
    const double nt = RunScript(kernel::MakeNt4Profile(), seed);
    const double w98 = RunScript(kernel::MakeWin98Profile(), seed);
    const double delta = std::abs(nt - w98) / std::min(nt, w98);
    sum_delta += delta;
    max_delta = std::max(max_delta, delta);
    table.AddRow({std::to_string(i + 1), report::AsciiTable::Fmt(nt, 2),
                  report::AsciiTable::Fmt(w98, 2),
                  report::AsciiTable::Fmt(delta * 100.0, 1) + "%"});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nAverage delta %.1f%%, max %.1f%% (paper: average 10%%, max 20%%).\n\n",
      sum_delta / kRuns * 100.0, max_delta * 100.0);

  // The contrast: latency metrics on the same two systems.
  const double minutes = wdmlat::bench::MeasurementMinutes(5.0);
  auto lat = [&](kernel::KernelProfile os) {
    lab::LabConfig config;
    config.os = std::move(os);
    config.stress = workload::GamesStress();
    config.thread_priority = 28;
    config.stress_minutes = minutes;
    config.seed = wdmlat::bench::BenchSeed();
    return lab::RunLatencyExperiment(config);
  };
  const lab::LabReport nt = lat(kernel::MakeNt4Profile());
  const lab::LabReport w98 = lat(kernel::MakeWin98Profile());
  const double nt_hr =
      stats::ComputeWorstCases(nt.thread, nt.samples_per_hour, nt.usage).hourly_ms;
  const double w98_hr =
      stats::ComputeWorstCases(w98.thread, w98.samples_per_hour, w98.usage).hourly_ms;
  std::printf(
      "Contrast — games-load expected hourly worst thread latency: NT %.3f ms,\n"
      "98 %.3f ms (%.0fx). \"Traditional throughput metrics predict a WDM driver\n"
      "will have essentially identical performance irrespective of OS.\"\n",
      nt_hr, w98_hr, w98_hr / nt_hr);
  return 0;
}
