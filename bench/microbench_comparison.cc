// Reproduction of the paper's Section 1.2 argument: classic unloaded-system
// OS microbenchmarks (lmbench / hbench:OS style averages) cannot see the
// real-time difference between the two OSes.
//
// "Most previous efforts to quantify the performance of personal computer
// and desktop workstation OSs have focused on average case values using
// measurements conducted on otherwise unloaded systems. [...] all of these
// benchmarks share a common problem in that they measure a subset of the OS
// overhead that an actual application would experience during normal
// operation."
//
// Left table: unloaded averages — the OSes differ by tens of percent.
// Right column: the loaded 99.99th-percentile thread latency — the OSes
// differ by an order of magnitude or more. Same machines, same kernels.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/kernel/profile.h"
#include "src/lab/lab.h"
#include "src/lab/test_system.h"
#include "src/report/ascii_table.h"
#include "src/lab/os_microbench.h"
#include "src/workload/stress_profile.h"

int main() {
  using namespace wdmlat;
  std::printf(
      "Section 1.2 reproduction: unloaded microbenchmark averages vs loaded\n"
      "latency distributions.\n\n");

  struct Row {
    const char* name;
    kernel::KernelProfile (*make)();
    lab::MicrobenchResults micro;
    double loaded_p9999_ms = 0.0;
  };
  Row rows[] = {
      {"Windows NT 4.0", kernel::MakeNt4Profile, {}, 0.0},
      {"Windows 98", kernel::MakeWin98Profile, {}, 0.0},
  };

  for (Row& row : rows) {
    std::printf("  microbenchmarking %s (unloaded)...\n", row.name);
    lab::TestSystemOptions quiet;
    quiet.kernel_self_noise = false;  // "otherwise unloaded system"
    lab::TestSystem system(row.make(), bench::BenchSeed(), quiet);
    row.micro = lab::RunOsMicrobench(system, 2000);

    std::printf("  measuring %s under the games load...\n", row.name);
    lab::LabConfig config;
    config.os = row.make();
    config.stress = workload::GamesStress();
    config.thread_priority = 28;
    config.stress_minutes = bench::MeasurementMinutes(5.0);
    config.seed = bench::BenchSeed();
    row.loaded_p9999_ms = lab::RunLatencyExperiment(config).thread.QuantileMs(0.9999);
  }
  std::printf("\n");

  report::AsciiTable table({"Metric (unloaded averages)", "Windows NT 4.0", "Windows 98",
                            "98 / NT"});
  auto add = [&](const char* name, double nt, double w98, int decimals = 2) {
    table.AddRow({name, report::AsciiTable::Fmt(nt, decimals),
                  report::AsciiTable::Fmt(w98, decimals),
                  report::AsciiTable::Fmt(w98 / nt, 1) + "x"});
  };
  add("context switch (us)", rows[0].micro.context_switch_us, rows[1].micro.context_switch_us);
  add("event signal to wake (us)", rows[0].micro.event_wake_us, rows[1].micro.event_wake_us);
  add("DPC dispatch (us)", rows[0].micro.dpc_dispatch_us, rows[1].micro.dpc_dispatch_us);
  add("interrupt dispatch (us)", rows[0].micro.interrupt_dispatch_us,
      rows[1].micro.interrupt_dispatch_us);
  add("timer expiry error (ms)", rows[0].micro.timer_error_ms, rows[1].micro.timer_error_ms);
  table.AddRule();
  add("LOADED thread latency p99.99 (ms)", rows[0].loaded_p9999_ms, rows[1].loaded_p9999_ms);
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nThe unloaded averages differ by tens of percent; the loaded tail by\n"
      "%.0fx. \"Batch benchmarks do not provide the information necessary to\n"
      "evaluate a system's interactive [or real-time] performance.\"\n",
      rows[1].loaded_p9999_ms / rows[0].loaded_p9999_ms);
  return 0;
}
