// Reproduction of Figure 5: "Effect of the Virus Scanner on High Priority
// Real-Time Thread Latency" — Windows 98, Business Apps, no sound scheme,
// priority 24 thread latency with and without the Plus! 98 virus scanner.
//
// Paper claim: "with the virus scanner 16 millisecond thread latencies occur
// over two orders of magnitude more frequently" — about once per 1,000 waits
// instead of once per 165,000.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/profile.h"
#include "src/lab/lab.h"
#include "src/report/loglog_plot.h"
#include "src/workload/stress_profile.h"

int main() {
  using namespace wdmlat;
  const double minutes = bench::MeasurementMinutes(15.0);
  const std::uint64_t seed = bench::BenchSeed();
  std::printf(
      "Figure 5 reproduction: Plus! 98 virus scanner effect on Windows 98\n"
      "priority-24 thread latency (office load, no sound scheme). %.1f virtual\n"
      "minutes per cell.\n\n",
      minutes);

  auto run = [&](bool with_scanner) {
    lab::LabConfig config;
    config.os = kernel::MakeWin98Profile();
    config.stress = workload::OfficeStress();
    config.thread_priority = 24;
    config.stress_minutes = minutes;
    config.seed = seed;
    config.options.virus_scanner = with_scanner;
    return lab::RunLatencyExperiment(config);
  };

  std::printf("  measuring without virus scanner...\n");
  const lab::LabReport off = run(false);
  std::printf("  measuring with virus scanner...\n\n");
  const lab::LabReport on = run(true);

  std::vector<report::LatencySeries> series{
      {"Business Apps w/o Virus Scanner (No Sound Scheme)", 'o', &off.thread},
      {"Business Apps with Virus Scanner (No Sound Scheme)", 'V', &on.thread},
  };
  std::fputs(report::RenderLatencyLogLog(
                 "Windows 98 Kernel Mode Thread (RT Priority 24) Latency in Millisecs",
                 series, 0.125, 128.0)
                 .c_str(),
             stdout);

  const double p_off = off.thread.FractionAtOrAbove(16.0);
  const double p_on = on.thread.FractionAtOrAbove(16.0);
  std::printf("P[thread latency >= 4 ms] per wait: without %.3g, with %.3g (%.0fx)\n",
              off.thread.FractionAtOrAbove(4.0), on.thread.FractionAtOrAbove(4.0),
              off.thread.FractionAtOrAbove(4.0) > 0
                  ? on.thread.FractionAtOrAbove(4.0) / off.thread.FractionAtOrAbove(4.0)
                  : 0.0);
  std::printf("\nP[thread latency >= 16 ms] per wait:\n");
  std::printf("  without scanner: %.3g (paper: ~1/165,000 = 6.1e-06)\n", p_off);
  std::printf("  with scanner:    %.3g (paper: ~1/1,000 = 1.0e-03)\n", p_on);
  if (p_off > 0.0) {
    std::printf("  ratio: %.0fx (paper: \"over two orders of magnitude\")\n", p_on / p_off);
  } else {
    std::printf("  ratio: >%.0fx (no 16 ms events observed without the scanner)\n",
                p_on * static_cast<double>(off.thread.count()));
  }
  std::printf(
      "\nFor an audio thread waiting every 16 ms, that is one breakup roughly\n"
      "every %.0f seconds with the scanner (paper: ~16 s) versus every %.0f\n"
      "minutes without it (paper: ~44 min).\n",
      p_on > 0 ? 0.016 / p_on : 0.0, p_off > 0 ? 0.016 / p_off / 60.0 : 1e9);
  return 0;
}
