// Reproduction of Table 3: "Observed Hourly, Daily and Weekly Worst Case
// Windows 98 Latencies (in ms.)" — with no sound scheme and no virus scanner
// on a PC 99 minimum system.
//
// For each of the four application stress loads, this bench measures the
// Windows 98 latency distributions with the paper's tool at thread
// priorities 28 and 24, extracts expected hourly/daily/weekly worst cases
// under the Section 3.1 usage model, and prints them next to the paper's
// values. The paper's measured interrupt latencies include the tool's
// ~1 PIT-period estimation offset; so do ours.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/profile.h"
#include "src/lab/matrix.h"
#include "src/report/ascii_table.h"
#include "src/stats/usage_model.h"
#include "src/workload/stress_profile.h"

namespace {

using namespace wdmlat;
using report::AsciiTable;

struct Cell {
  stats::WorstCases ours;
  const char* paper;
};

struct WorkloadResult {
  std::string name;
  // Rows of Table 3.
  stats::WorstCases isr;            // H/W Int. to S/W ISR
  stats::WorstCases isr_to_dpc;     // S/W ISR to DPC (delta)
  stats::WorstCases dpc;            // H/W Interrupt to DPC
  stats::WorstCases thread28;       // DPC to kernel RT thread (High)
  stats::WorstCases int_thread28;   // H/W Int. to kernel RT thread (High)
  stats::WorstCases thread24;       // DPC to kernel RT thread (Med.)
  stats::WorstCases int_thread24;   // H/W Int. to kernel RT thread (Med.)
};

// Extract the Table 3 rows for one workload from its two merged matrix
// groups (priority 28 = "High", 24 = "Med."), pooled over every trial.
WorkloadResult ExtractWorkload(const workload::StressProfile& stress,
                               const lab::MergedCell& hi, const lab::MergedCell& med) {
  WorkloadResult result;
  result.name = stress.name;

  const stats::UsageModel& usage = stress.usage;
  auto worst = [&](const stats::LatencyHistogram& hist, double rate) {
    // Plain empirical order statistics: daily/weekly columns saturate at the
    // observed maximum unless the run is long enough (WDMLAT_MINUTES >= ~300
    // resolves them; power-law extrapolation is available in stats:: but
    // overshoots the capped legacy-section distributions, so the headline
    // table stays empirical — see EXPERIMENTS.md).
    return stats::ComputeWorstCases(hist, rate, usage);
  };
  result.isr = worst(hi.interrupt, hi.samples_per_hour());
  result.isr_to_dpc = worst(hi.isr_to_dpc, hi.samples_per_hour());
  result.dpc = worst(hi.dpc_interrupt, hi.samples_per_hour());
  result.thread28 = worst(hi.thread, hi.samples_per_hour());
  result.int_thread28 = worst(hi.thread_interrupt, hi.samples_per_hour());
  result.thread24 = worst(med.thread, med.samples_per_hour());
  result.int_thread24 = worst(med.thread_interrupt, med.samples_per_hour());
  return result;
}

void PrintRow(AsciiTable& table, const char* service, const char* prefix,
              const std::vector<const stats::WorstCases*>& cells,
              const std::vector<const char*>& paper) {
  std::vector<std::string> row{service};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const stats::WorstCases& wc = *cells[i];
    row.push_back(std::string(prefix) + AsciiTable::Fmt(wc.hourly_ms) + " / " +
                  AsciiTable::Fmt(wc.daily_ms) + " / " + AsciiTable::Fmt(wc.weekly_ms));
    row.push_back(paper[i]);
  }
  table.AddRow(std::move(row));
}

}  // namespace

int main() {
  const double minutes = wdmlat::bench::MeasurementMinutes(8.0);
  const std::uint64_t seed = wdmlat::bench::BenchSeed();
  const int jobs = wdmlat::bench::BenchJobs();
  std::printf(
      "Table 3 reproduction: Windows 98 expected hourly/daily/weekly worst-case\n"
      "latencies (ms), no sound scheme, no virus scanner. %.1f virtual minutes\n"
      "per cell (WDMLAT_MINUTES to change), %d parallel jobs (WDMLAT_JOBS).\n"
      "Paper columns shown as hr/day/wk.\n\n",
      minutes, jobs);

  // The 98 half of the matrix: 1 OS x 4 workloads x {28, 24}, run in parallel.
  lab::MatrixSpec spec;
  spec.oses = {kernel::MakeWin98Profile()};
  spec.workloads = {workload::OfficeStress(), workload::WorkstationStress(),
                    workload::GamesStress(), workload::WebStress()};
  spec.priorities = {28, 24};
  spec.stress_minutes = minutes;
  spec.master_seed = seed;
  const lab::ExperimentMatrix matrix(spec);

  std::printf("  measuring %zu cells...\n", matrix.cells().size());
  const lab::MatrixResult run = matrix.Run(jobs);

  std::vector<WorkloadResult> results;
  for (std::size_t wl = 0; wl < spec.workloads.size(); ++wl) {
    results.push_back(ExtractWorkload(spec.workloads[wl],
                                      run.merged[matrix.GroupIndex(0, wl, 0)],
                                      run.merged[matrix.GroupIndex(0, wl, 1)]));
  }
  std::printf("\n");

  AsciiTable table({"OS Service", "Office (ours)", "Office (paper)", "Workstation (ours)",
                    "Workstation (paper)", "3D Games (ours)", "3D Games (paper)",
                    "Web (ours)", "Web (paper)"});
  auto cells = [&](auto member) {
    std::vector<const wdmlat::stats::WorstCases*> out;
    for (const auto& result : results) {
      out.push_back(&(result.*member));
    }
    return out;
  };
  PrintRow(table, "H/W Int. to S/W ISR", "", cells(&WorkloadResult::isr),
           {"<1.0 / 1.4 / 1.6", "2.2 / 5.6 / 6.3", "8.8 / 9.7 / 12.2", "1.1 / 1.7 / 3.5"});
  PrintRow(table, "S/W ISR to DPC", "+", cells(&WorkloadResult::isr_to_dpc),
           {"+0.1 / 0.1 / 0.4", "+0.5 / 0.5 / 0.6", "+0.9 / 2.1 / 2.1", "+0.2 / 0.3 / 0.3"});
  PrintRow(table, "H/W Interrupt to DPC", "", cells(&WorkloadResult::dpc),
           {"1.0 / 1.5 / 2.0", "2.7 / 6.1 / 6.9", "9.7 / 12 / 14", "1.3 / 2.0 / 3.8"});
  table.AddRule();
  PrintRow(table, "DPC to kernel RT thread (High)", "+", cells(&WorkloadResult::thread28),
           {"+1.6 / 5.2 / 31", "+21 / 24 / 24", "+35 / 46 / 70", "+14 / 68 / 80"});
  PrintRow(table, "H/W Int. to RT thread (High)", "", cells(&WorkloadResult::int_thread28),
           {"2.6 / 6.7 / 33", "24 / 30 / 31", "45 / 58 / 84", "15 / 70 / 84"});
  PrintRow(table, "DPC to kernel RT thread (Med.)", "+", cells(&WorkloadResult::thread24),
           {"+3.1 / 6.7 / 31", "+21 / 23 / 24", "+36 / 47 / 70", "+51 / 68 / 80"});
  PrintRow(table, "H/W Int. to RT thread (Med.)", "", cells(&WorkloadResult::int_thread24),
           {"4.1 / 8.2 / 33", "24 / 29 / 31", "46 / 59 / 84", "52 / 70 / 84"});
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nShape checks (paper Section 4): games dominate interrupt latency; thread\n"
      "latency adds tens of ms on every workload; ISR->DPC adds <~2 ms.\n");
  std::printf(
      "\nWall clock: %zu cells in %.2f s (%.2f s summed cell time) -> %.2fx speedup "
      "at %d jobs\n",
      matrix.cells().size(), run.wall_seconds, run.total_cell_seconds, run.Speedup(),
      jobs);
  return 0;
}
