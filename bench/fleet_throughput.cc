// Fleet cells/sec throughput: the amortized warm-runner path (one reused
// TestSystem per worker, compact per-cell records) against the PR 5
// journaled matrix path (a fresh TestSystem plus a full ReportToJson
// artifact per cell) on the same population at the same job count.
//
// Population cells are short — a large spec trades per-cell depth for
// member count, so per-cell setup (engine + pool + kernel + drivers
// construction, artifact serialization) is the term that matters. The
// acceptance bar for the fleet tentpole is >= 2x cells/sec at equal
// --jobs; the bench prints the ratio and fails loudly below the bar so CI
// or a hand run can gate on it.
//
//   WDMLAT_CELLS=1024 WDMLAT_CELL_MINUTES=0.0002 WDMLAT_JOBS=1 fleet_throughput

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/lab/fleet.h"
#include "src/lab/lab.h"
#include "src/lab/report_io.h"
#include "src/runtime/fleet_supervisor.h"
#include "src/runtime/thread_pool.h"

namespace {

using namespace wdmlat;
using Clock = std::chrono::steady_clock;

double EnvDouble(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double value = std::atof(env);
    if (value > 0.0) {
      return value;
    }
  }
  return fallback;
}

lab::FleetSpec Population(std::uint64_t cells, double cell_minutes, double pit_hz) {
  lab::FleetSpec spec;
  spec.name = "throughput";
  spec.master_seed = bench::BenchSeed();
  lab::FleetCohort nt;
  nt.name = "nt-mixed";
  nt.os = "nt4";
  nt.workloads = {"office", "web"};
  nt.count = (cells + 1) / 2;
  nt.stress_minutes = cell_minutes;
  nt.warmup_seconds = 0.005;
  nt.pit_hz = pit_hz;
  nt.speed_mhz_lo = 150.0;
  nt.speed_mhz_hi = 450.0;
  lab::FleetCohort w98 = nt;
  w98.name = "98-games";
  w98.os = "win98";
  w98.workloads = {"games"};
  w98.count = cells / 2;
  spec.cohorts = {nt, w98};
  return spec;
}

}  // namespace

int main() {
  // 1024 cells keeps each trial's wall time long enough that scheduler
  // hiccups don't dominate, and lets the matrix path pay what it really
  // pays at population scale (the Nth create in a growing artifact
  // directory is not the 1st).
  const std::uint64_t cells =
      static_cast<std::uint64_t>(EnvDouble("WDMLAT_CELLS", 1024.0));
  // Screening-population regime: an 8 kHz PIT over 0.0002 virtual minutes
  // of stress keeps ~10 post-warmup samples per cell (the driver discards
  // its first 16 — PIT reprogramming). A 100k+ member population buys
  // breadth, not per-cell depth: the cohort merge pools samples across
  // cells, so per-cell fixed costs (system construction, artifact +
  // journal file traffic) are what throughput is made of.
  const double cell_minutes = EnvDouble("WDMLAT_CELL_MINUTES", 0.0002);
  const double pit_hz = EnvDouble("WDMLAT_PIT_HZ", 8000.0);
  const int jobs = bench::BenchJobs();
  const lab::Fleet fleet(Population(cells, cell_minutes, pit_hz));
  if (!fleet.error().empty()) {
    std::fprintf(stderr, "fleet_throughput: %s\n", fleet.error().c_str());
    return 1;
  }

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "wdmlat_fleet_throughput";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::printf(
      "fleet_throughput: %llu cells x %.4f virtual minutes, %d job(s)\n"
      "(WDMLAT_CELLS / WDMLAT_CELL_MINUTES / WDMLAT_JOBS to change)\n\n",
      static_cast<unsigned long long>(fleet.cell_count()), cell_minutes, jobs);

  // --- Matrix-era path: fresh TestSystem + the PR 5 journaled checkpoint
  // per cell, exactly as src/lab/matrix.cc commits it — full lossless
  // artifact file (write + flush), Fnv1a64 checksum of the artifact bytes,
  // then a journal JSONL line appended and flushed under the lock.
  std::uint64_t matrix_bytes = 0;
  std::uint64_t matrix_samples = 0;
  const auto run_matrix_trial = [&](int trial) {
    // A fresh directory per trial: the real journaled path creates every
    // artifact file; overwriting last trial's files would be cheaper than
    // what PR 5 actually pays.
    const std::filesystem::path trial_dir =
        dir / ("matrix_trial_" + std::to_string(trial));
    std::filesystem::create_directories(trial_dir);
    const Clock::time_point start = Clock::now();
    std::vector<std::uint64_t> bytes_per_job(static_cast<std::size_t>(jobs), 0);
    std::vector<std::uint64_t> samples_per_job(static_cast<std::size_t>(jobs), 0);
    std::ofstream journal((trial_dir / "journal.jsonl").string(),
                          std::ios::trunc | std::ios::binary);
    std::mutex journal_mutex;
    runtime::ParallelFor(jobs, fleet.cell_count(), [&](std::size_t i) {
      const lab::FleetCell cell = fleet.CellAt(i);
      const lab::LabConfig config = fleet.CellConfig(cell);
      const lab::LabReport report = lab::RunLatencyExperiment(config);
      const std::string artifact = lab::ReportToJson(report);
      const std::string path =
          (trial_dir / ("cell_" + std::to_string(i) + ".json")).string();
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out << artifact;
      out.flush();
      const std::uint64_t checksum = lab::Fnv1a64(artifact);
      std::ostringstream line;
      line << "{\"cell\": " << i << ", \"seed\": \"" << cell.seed
           << "\", \"status\": \"ok\", \"checksum\": \"" << checksum
           << "\", \"artifact\": \"" << path << "\", \"samples\": "
           << report.samples << ", \"attempts\": 1}\n";
      {
        std::lock_guard<std::mutex> lock(journal_mutex);
        journal << line.str();
        journal.flush();
      }
      bytes_per_job[i % jobs] += artifact.size();
      samples_per_job[i % jobs] += report.samples;
    });
    matrix_bytes = 0;
    matrix_samples = 0;
    for (const std::uint64_t b : bytes_per_job) {
      matrix_bytes += b;
    }
    for (const std::uint64_t s : samples_per_job) {
      matrix_samples += s;
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  // --- Fleet path: warm runners + compact shard records over the same
  // population at the same job count.
  std::uint64_t fleet_bytes = 0;
  bool fleet_failed = false;
  const auto run_fleet_trial = [&]() {
    lab::FleetShardOptions options;
    options.jobs = jobs;
    options.out_path = lab::FleetShardPath(dir.string(), 0, 1);
    std::filesystem::remove(options.out_path);  // fresh run, not a resume
    const Clock::time_point start = Clock::now();
    const lab::FleetShardResult result = RunFleetShard(fleet, options);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (!result.ok()) {
      std::fprintf(stderr, "fleet_throughput: shard run failed: %s\n",
                   result.error.c_str());
      fleet_failed = true;
      return seconds;
    }
    fleet_bytes = std::filesystem::file_size(options.out_path);
    return seconds;
  };

  // Three alternating trials per path, scored by median wall time: a single
  // trial on a shared host confuses scheduling noise (which hits whichever
  // path runs during the hiccup) with the amortization being measured.
  std::vector<double> matrix_walls;
  std::vector<double> fleet_walls;
  for (int trial = 0; trial < 3; ++trial) {
    matrix_walls.push_back(run_matrix_trial(trial));
    fleet_walls.push_back(run_fleet_trial());
    if (fleet_failed) {
      return 1;
    }
  }
  const auto median3 = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double matrix_seconds = median3(matrix_walls);
  const double fleet_seconds = median3(fleet_walls);

  const double matrix_rate = static_cast<double>(fleet.cell_count()) / matrix_seconds;
  const double fleet_rate = static_cast<double>(fleet.cell_count()) / fleet_seconds;
  const double speedup = fleet_rate / matrix_rate;
  std::printf("  %-28s %12s %12s %14s\n", "path", "median s/3", "cells/sec",
              "artifact KiB");
  std::printf("  %-28s %12.3f %12.1f %14.1f\n", "matrix (fresh + artifact)",
              matrix_seconds, matrix_rate, matrix_bytes / 1024.0);
  std::printf("  %-28s %12.3f %12.1f %14.1f\n", "fleet (warm + record)",
              fleet_seconds, fleet_rate, fleet_bytes / 1024.0);
  std::printf("\n  fleet/matrix cells-per-second: %.2fx (bar: >= 2x)\n", speedup);
  std::printf("  kept samples/cell: %.1f\n",
              static_cast<double>(matrix_samples) /
                  static_cast<double>(fleet.cell_count()));

  // --- Supervised-mode overhead: the same single-shard run driven through
  // runtime::SuperviseFleet (fork()ed worker, liveness heartbeat armed, the
  // production poll cadence) against a bare fork + waitpid of the identical
  // worker. The supervisor's per-poll cost is a stat() of the shard file
  // plus a WNOHANG waitpid; the bar is < 5% cells/sec — fault tolerance
  // must be close to free when nothing faults. A longer population than the
  // amortization trials (8x) keeps the one-time end-of-run cost — the
  // supervisor learns of the exit up to one poll interval late — from
  // masquerading as per-cell watching cost.
  const lab::Fleet sup_fleet(Population(cells * 8, cell_minutes, pit_hz));
  if (!sup_fleet.error().empty()) {
    std::fprintf(stderr, "fleet_throughput: %s\n", sup_fleet.error().c_str());
    return 1;
  }
  const auto fork_worker = [&](const std::string& out_path, std::uint64_t lo,
                               std::uint64_t hi) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      lab::FleetShardOptions options;
      options.jobs = jobs;
      options.out_path = out_path;
      options.cell_lo = lo;
      options.cell_hi = hi;
      const lab::FleetShardResult result = RunFleetShard(sup_fleet, options);
      std::_Exit(result.ok() ? 0 : 3);
    }
    return pid;
  };
  const std::string plain_path = (dir / "plain_shard.jsonl").string();
  const std::string sup_path = (dir / "sup_shard.jsonl").string();
  bool supervised_failed = false;
  const auto run_plain_trial = [&]() {
    std::filesystem::remove(plain_path);
    const Clock::time_point start = Clock::now();
    const pid_t pid = fork_worker(plain_path, 0, 0);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      supervised_failed = true;
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  const auto run_supervised_trial = [&]() {
    std::filesystem::remove(sup_path);
    runtime::FleetSupervisorOptions sup;
    sup.shards = 1;
    sup.cell_count = static_cast<std::size_t>(sup_fleet.cell_count());
    sup.max_parallel = 1;
    sup.shard_timeout_s = 30.0;  // armed: every poll stats the shard file
    sup.shard_path = [&](std::size_t) { return sup_path; };
    sup.cell_seed = [&](std::size_t cell) { return sup_fleet.CellAt(cell).seed; };
    sup.spawn = [&](const runtime::FleetWorkerRequest& request, pid_t* pid,
                    std::string* error) {
      *pid = fork_worker(request.out_path, request.cell_lo,
                         request.cell_hi < sup_fleet.cell_count() ? request.cell_hi
                                                                  : 0);
      if (*pid < 0) {
        *error = "fork failed";
        return false;
      }
      return true;
    };
    const Clock::time_point start = Clock::now();
    const runtime::FleetSupervisorResult result = runtime::SuperviseFleet(sup);
    if (!result.ok()) {
      std::fprintf(stderr, "fleet_throughput: supervised run failed: %s\n",
                   result.error.c_str());
      supervised_failed = true;
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  std::vector<double> plain_walls;
  std::vector<double> sup_walls;
  for (int trial = 0; trial < 3; ++trial) {
    plain_walls.push_back(run_plain_trial());
    sup_walls.push_back(run_supervised_trial());
    if (supervised_failed) {
      return 1;
    }
  }
  const double plain_seconds = median3(plain_walls);
  const double sup_seconds = median3(sup_walls);
  const double plain_rate =
      static_cast<double>(sup_fleet.cell_count()) / plain_seconds;
  const double sup_rate =
      static_cast<double>(sup_fleet.cell_count()) / sup_seconds;
  const double sup_cost = sup_rate / plain_rate;
  std::printf("\n  %-28s %12s %12s\n", "worker-process path", "median s/3",
              "cells/sec");
  std::printf("  %-28s %12.3f %12.1f\n", "plain fork + waitpid", plain_seconds,
              plain_rate);
  std::printf("  %-28s %12.3f %12.1f\n", "supervised (heartbeat on)", sup_seconds,
              sup_rate);
  std::printf("\n  supervised/plain cells-per-second: %.3fx (bar: >= 0.95x)\n",
              sup_cost);

  std::filesystem::remove_all(dir);
  if (sup_cost < 0.95) {
    std::fprintf(stderr,
                 "fleet_throughput: FAIL — heartbeat watching costs more than "
                 "5%% cells/sec\n");
    return 1;
  }
  if (matrix_samples == 0) {
    // A regime so short the driver's 16-sample PIT-reprogram discard eats
    // everything measures nothing — cells must keep real samples for the
    // comparison to be honest.
    std::fprintf(stderr, "fleet_throughput: FAIL — cells kept zero samples\n");
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr, "fleet_throughput: FAIL — below the 2x amortization bar\n");
    return 1;
  }
  std::printf("  PASS\n");
  return 0;
}
