// Validation of the quality-of-service predictions (paper Section 6.1).
//
// "We have also developed a tool that models periodic computation at
// configurable modalities (e.g., threads, DPCs) and priorities within
// modalities, and reports the number of deadlines that have been missed.
// [...] We will also be able to use the tool to validate our quality of
// service predictions in this paper and expect to report on this work at
// the conference."
//
// This bench is that validation: it runs an actual soft-modem datapump model
// (drivers::PeriodicTask) on Windows 98 under the 3D games load at several
// buffer depths, in both DPC and thread modality, and compares the
// *directly measured* mean time between deadline misses against the MTTF
// *predicted* from the latency tables by the Section 5 slack-time method
// (our Figures 6/7).

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/mttf.h"
#include "src/drivers/latency_driver.h"
#include "src/drivers/periodic_load_tool.h"
#include "src/kernel/profile.h"
#include "src/lab/test_system.h"
#include "src/report/ascii_table.h"
#include "src/workload/stress_load.h"
#include "src/workload/stress_profile.h"

namespace {

using namespace wdmlat;

struct Measurement {
  double measured_mtbf_s = 0.0;  // infinity if no misses
  std::uint64_t misses = 0;
  std::uint64_t cycles = 0;
};

Measurement RunDatapump(drivers::Modality modality, double period_ms, int buffers,
                        double minutes, std::uint64_t seed) {
  lab::TestSystem system(kernel::MakeWin98Profile(), seed);
  workload::StressLoad load(system.deps(), workload::GamesStress(), system.ForkRng());
  drivers::PeriodicTask::Config config;
  config.modality = modality;
  config.period_ms = period_ms;
  config.compute_ms = 0.25 * period_ms;  // 25% of the CPU
  config.buffers = buffers;
  drivers::PeriodicTask task(system.kernel(), config);
  load.Start();
  system.RunFor(2.0);  // warmup
  task.Start();
  system.RunForMinutes(minutes);
  Measurement m;
  m.misses = task.deadline_misses();
  m.cycles = task.cycles_completed();
  m.measured_mtbf_s = task.miss_rate_per_s() > 0.0 ? 1.0 / task.miss_rate_per_s()
                                                   : std::numeric_limits<double>::infinity();
  return m;
}

std::string FmtSeconds(double s) {
  if (std::isinf(s)) {
    return ">run";
  }
  return report::AsciiTable::Fmt(s, 0);
}

}  // namespace

int main() {
  const double minutes = bench::MeasurementMinutes(20.0);
  const std::uint64_t seed = bench::BenchSeed();
  std::printf(
      "Section 6.1 validation: measured deadline-miss rates of a live datapump\n"
      "model vs the MTTF predicted from the latency tables (Windows 98, 3D games\n"
      "load, 25%% CPU datapump). %.1f virtual minutes per cell.\n\n",
      minutes);

  // Predictions come from the measurement driver's latency tables, gathered
  // on an identically configured system.
  std::printf("  measuring latency tables for the prediction...\n");
  lab::TestSystem system(kernel::MakeWin98Profile(), seed);
  workload::StressLoad load(system.deps(), workload::GamesStress(), system.ForkRng());
  drivers::LatencyDriver driver(system.kernel(), drivers::LatencyDriver::Config{});
  load.Start();
  system.RunFor(2.0);
  driver.Start();
  system.RunForMinutes(minutes);

  struct Case {
    drivers::Modality modality;
    double period_ms;
    int buffers;
  };
  const std::vector<Case> cases{
      {drivers::Modality::kDpc, 8.0, 2},     // 8 ms buffering
      {drivers::Modality::kDpc, 8.0, 3},     // 16 ms buffering
      {drivers::Modality::kThread, 8.0, 3},  // 16 ms buffering
      {drivers::Modality::kThread, 16.0, 3}, // 32 ms buffering
      {drivers::Modality::kThread, 16.0, 4}, // 48 ms buffering
  };

  report::AsciiTable table({"Modality", "Period (ms)", "Buffers", "Buffering (ms)",
                            "Predicted MTTF (s)", "Measured MTBF (s)", "Misses", "Cycles"});
  for (const Case& c : cases) {
    const double buffering = (c.buffers - 1) * c.period_ms;
    const auto& latency = c.modality == drivers::Modality::kDpc
                              ? driver.dpc_interrupt_latency()
                              : driver.thread_interrupt_latency();
    analysis::DatapumpModel model;
    model.buffers = c.buffers;
    const double predicted = analysis::MeanTimeToUnderrunSeconds(latency, buffering, model);
    std::printf("  running %s datapump, %d x %.0f ms buffers...\n",
                c.modality == drivers::Modality::kDpc ? "DPC" : "thread", c.buffers,
                c.period_ms);
    const Measurement m = RunDatapump(c.modality, c.period_ms, c.buffers, minutes, seed + 17);
    table.AddRow({c.modality == drivers::Modality::kDpc ? "DPC" : "thread",
                  report::AsciiTable::Fmt(c.period_ms, 0), std::to_string(c.buffers),
                  report::AsciiTable::Fmt(buffering, 0), FmtSeconds(predicted),
                  FmtSeconds(m.measured_mtbf_s), std::to_string(m.misses),
                  std::to_string(m.cycles)});
  }
  std::printf("\n");
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nThe prediction and the live measurement should agree within a small\n"
      "factor wherever misses are frequent enough to measure in the run; cells\n"
      "marked >run saw no misses within the measurement window.\n");
  return 0;
}
