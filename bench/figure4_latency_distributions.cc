// Reproduction of Figure 4: "Measured Interrupt and Thread Latencies under
// Load on Windows NT 4.0 and Windows 98" — six log-log panels, each with one
// series per application workload:
//
//   1. Windows NT 4.0 DPC interrupt latency           (1 .. 128 ms axis)
//   2. Windows 98 interrupt + DPC latency             (1 .. 128 ms axis)
//   3. Windows NT 4.0 thread latency, RT priority 28  (0.125 .. 128 ms)
//   4. Windows 98 thread latency, RT priority 28      (0.125 .. 128 ms)
//   5. Windows NT 4.0 thread latency, RT priority 24  (0.125 .. 128 ms)
//   6. Windows 98 thread latency, RT priority 24      (0.125 .. 128 ms)
//
// The 16-cell grid runs on the parallel ExperimentMatrix (WDMLAT_JOBS workers,
// default all cores); merged results are bit-identical for any job count, and
// the wall-clock speedup over the summed per-cell time is reported at the end.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/lab/matrix.h"
#include "src/report/loglog_plot.h"
#include "src/workload/stress_profile.h"

namespace {

using namespace wdmlat;

}  // namespace

int main() {
  const double minutes = bench::MeasurementMinutes(10.0);
  const std::uint64_t seed = bench::BenchSeed();
  const int jobs = bench::BenchJobs();
  std::printf(
      "Figure 4 reproduction: latency distributions under load, %.1f virtual\n"
      "minutes per cell (WDMLAT_MINUTES to change), %d parallel jobs\n"
      "(WDMLAT_JOBS to change).\n\n",
      minutes, jobs);

  // The paper's full grid: {NT, 98} x {office, workstation, games, web} x
  // {priority 28, 24}, with per-cell seeds derived from the master seed.
  lab::MatrixSpec spec = lab::PaperMatrix();
  spec.stress_minutes = minutes;
  spec.master_seed = seed;
  const lab::ExperimentMatrix matrix(spec);
  const char kMarks[] = {'B', 'W', 'G', 'w'};

  std::printf("  measuring %zu cells...\n", matrix.cells().size());
  const lab::MatrixResult result = matrix.Run(jobs);
  std::printf("\n");

  // Panel helper: one series per workload for a fixed (os, priority, metric).
  // PaperMatrix orders oses {NT, 98} and priorities {28, 24}.
  auto panel = [&](const char* title, std::size_t os_index, std::size_t priority_index,
                   const stats::LatencyHistogram lab::MergedCell::* hist, double lo_ms) {
    std::vector<report::LatencySeries> series;
    for (std::size_t wl = 0; wl < spec.workloads.size(); ++wl) {
      const lab::MergedCell& cell =
          result.merged[matrix.GroupIndex(os_index, wl, priority_index)];
      series.push_back(
          report::LatencySeries{spec.workloads[wl].name, kMarks[wl], &(cell.*hist)});
    }
    std::fputs(report::RenderLatencyLogLog(title, series, lo_ms, 128.0).c_str(), stdout);
    std::printf("\n");
  };

  panel("Windows NT 4.0 DPC Interrupt Latency in Milliseconds", 0, 0,
        &lab::MergedCell::dpc_interrupt, 1.0);
  panel("Windows 98 Interrupt + DPC Latency in Milliseconds", 1, 0,
        &lab::MergedCell::dpc_interrupt, 1.0);
  panel("Windows NT4 Kernel Mode Thread (RT Priority 28) Latency in Millisecs", 0, 0,
        &lab::MergedCell::thread, 0.125);
  panel("Windows 98 Kernel Mode Thread (RT Priority 28) Latency in Millisecs", 1, 0,
        &lab::MergedCell::thread, 0.125);
  panel("Windows NT4 Kernel Mode Thread (RT Priority 24) Latency in Millisecs", 0, 1,
        &lab::MergedCell::thread, 0.125);
  panel("Windows 98 Kernel Mode Thread (RT Priority 24) Latency in Millisecs", 1, 1,
        &lab::MergedCell::thread, 0.125);

  // The paper's headline orderings (Section 4.2). Games is workload index 2.
  const lab::MergedCell& nt_hi_games = result.merged[matrix.GroupIndex(0, 2, 0)];
  const lab::MergedCell& nt_med_games = result.merged[matrix.GroupIndex(0, 2, 1)];
  const lab::MergedCell& w98_hi_games = result.merged[matrix.GroupIndex(1, 2, 0)];
  std::printf("Headline checks (99.99th percentile thread latency, 3D games):\n");
  const double nt_hi = nt_hi_games.thread.QuantileMs(0.9999);
  const double nt_med = nt_med_games.thread.QuantileMs(0.9999);
  const double w98_hi = w98_hi_games.thread.QuantileMs(0.9999);
  const double w98_dpc = w98_hi_games.isr_to_dpc.QuantileMs(0.9999);
  std::printf("  NT prio 28: %.3f ms   NT prio 24: %.3f ms   98 prio 28: %.3f ms\n", nt_hi,
              nt_med, w98_hi);
  std::printf("  98 DPC-from-ISR: %.3f ms\n", w98_dpc);
  std::printf("  98 thread / NT thread (28): %.1fx   98 thread / 98 DPC: %.1fx\n",
              w98_hi / nt_hi, w98_hi / w98_dpc);

  std::printf(
      "\nWall clock: %zu cells in %.2f s (%.2f s summed cell time) -> %.2fx speedup "
      "at %d jobs\n",
      matrix.cells().size(), result.wall_seconds, result.total_cell_seconds,
      result.Speedup(), jobs);
  return 0;
}
