// Reproduction of Figure 4: "Measured Interrupt and Thread Latencies under
// Load on Windows NT 4.0 and Windows 98" — six log-log panels, each with one
// series per application workload:
//
//   1. Windows NT 4.0 DPC interrupt latency           (1 .. 128 ms axis)
//   2. Windows 98 interrupt + DPC latency             (1 .. 128 ms axis)
//   3. Windows NT 4.0 thread latency, RT priority 28  (0.125 .. 128 ms)
//   4. Windows 98 thread latency, RT priority 28      (0.125 .. 128 ms)
//   5. Windows NT 4.0 thread latency, RT priority 24  (0.125 .. 128 ms)
//   6. Windows 98 thread latency, RT priority 24      (0.125 .. 128 ms)

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/profile.h"
#include "src/lab/lab.h"
#include "src/report/loglog_plot.h"
#include "src/workload/stress_profile.h"

namespace {

using namespace wdmlat;

struct Cell {
  std::unique_ptr<lab::LabReport> report;
};

}  // namespace

int main() {
  const double minutes = bench::MeasurementMinutes(10.0);
  const std::uint64_t seed = bench::BenchSeed();
  std::printf(
      "Figure 4 reproduction: latency distributions under load, %.1f virtual\n"
      "minutes per cell (WDMLAT_MINUTES to change).\n\n",
      minutes);

  const std::vector<workload::StressProfile> loads = {
      workload::OfficeStress(), workload::WorkstationStress(), workload::GamesStress(),
      workload::WebStress()};
  const char kMarks[] = {'B', 'W', 'G', 'w'};

  // One run per (OS, workload, priority) cell, as in the paper's lab work.
  auto run = [&](const kernel::KernelProfile& os, const workload::StressProfile& stress,
                 int priority) {
    lab::LabConfig config;
    config.os = os;
    config.stress = stress;
    config.thread_priority = priority;
    config.stress_minutes = minutes;
    config.seed = seed;
    return std::make_unique<lab::LabReport>(lab::RunLatencyExperiment(config));
  };

  std::vector<std::unique_ptr<lab::LabReport>> nt28, nt24, w98_28, w98_24;
  for (const auto& stress : loads) {
    std::printf("  measuring %s (NT 28/24, 98 28/24)...\n", stress.name.c_str());
    nt28.push_back(run(kernel::MakeNt4Profile(), stress, 28));
    nt24.push_back(run(kernel::MakeNt4Profile(), stress, 24));
    w98_28.push_back(run(kernel::MakeWin98Profile(), stress, 28));
    w98_24.push_back(run(kernel::MakeWin98Profile(), stress, 24));
  }
  std::printf("\n");

  auto panel = [&](const char* title,
                   const std::vector<std::unique_ptr<lab::LabReport>>& cells,
                   const stats::LatencyHistogram lab::LabReport::* hist, double lo_ms) {
    std::vector<report::LatencySeries> series;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      series.push_back(report::LatencySeries{loads[i].name, kMarks[i], &((*cells[i]).*hist)});
    }
    std::fputs(report::RenderLatencyLogLog(title, series, lo_ms, 128.0).c_str(), stdout);
    std::printf("\n");
  };

  panel("Windows NT 4.0 DPC Interrupt Latency in Milliseconds", nt28,
        &lab::LabReport::dpc_interrupt, 1.0);
  panel("Windows 98 Interrupt + DPC Latency in Milliseconds", w98_28,
        &lab::LabReport::dpc_interrupt, 1.0);
  panel("Windows NT4 Kernel Mode Thread (RT Priority 28) Latency in Millisecs", nt28,
        &lab::LabReport::thread, 0.125);
  panel("Windows 98 Kernel Mode Thread (RT Priority 28) Latency in Millisecs", w98_28,
        &lab::LabReport::thread, 0.125);
  panel("Windows NT4 Kernel Mode Thread (RT Priority 24) Latency in Millisecs", nt24,
        &lab::LabReport::thread, 0.125);
  panel("Windows 98 Kernel Mode Thread (RT Priority 24) Latency in Millisecs", w98_24,
        &lab::LabReport::thread, 0.125);

  // The paper's headline orderings (Section 4.2).
  std::printf("Headline checks (99.99th percentile thread latency, 3D games):\n");
  const double nt_hi = nt28[2]->thread.QuantileMs(0.9999);
  const double nt_med = nt24[2]->thread.QuantileMs(0.9999);
  const double w98_hi = w98_28[2]->thread.QuantileMs(0.9999);
  const double w98_dpc = w98_28[2]->isr_to_dpc.QuantileMs(0.9999);
  std::printf("  NT prio 28: %.3f ms   NT prio 24: %.3f ms   98 prio 28: %.3f ms\n", nt_hi,
              nt_med, w98_hi);
  std::printf("  98 DPC-from-ISR: %.3f ms\n", w98_dpc);
  std::printf("  98 thread / NT thread (28): %.1fx   98 thread / 98 DPC: %.1fx\n",
              w98_hi / nt_hi, w98_hi / w98_dpc);
  return 0;
}
