// Reproduction of Figure 7: "Mean Time to Buffer Underrun for a Thread-based
// Datapump of a Softmodem on Windows 98 in Data Transfer Mode."
//
// A thread-based datapump is dispatched from the hardware interrupt through
// the DPC to a high-priority real-time kernel thread, so its dispatch delay
// is the thread *interrupt* latency. Section 5.1 anchor: "a Windows 98
// thread-based datapump that uses high-priority, real-time kernel mode
// threads will require about 48 milliseconds of latency tolerance (e.g.,
// four 16 millisecond buffers) in order to average an hour between misses
// while playing an 'average' 3D game." The paper forgoes the NT analysis
// because NT's worst cases sit below the minimum modem slack of 3 ms; we
// print the NT check.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/mttf.h"
#include "src/kernel/profile.h"
#include "src/lab/lab.h"
#include "src/report/loglog_plot.h"
#include "src/workload/stress_profile.h"

int main() {
  using namespace wdmlat;
  const double minutes = bench::MeasurementMinutes(20.0);
  const std::uint64_t seed = bench::BenchSeed();
  std::printf(
      "Figure 7 reproduction: MTTF for a thread-based soft-modem datapump on\n"
      "Windows 98 (high RT priority threads, 25%% CPU datapump). %.1f virtual\n"
      "minutes per workload.\n\n",
      minutes);

  const std::vector<workload::StressProfile> loads = {
      workload::OfficeStress(), workload::WorkstationStress(), workload::GamesStress(),
      workload::WebStress()};
  const char kMarks[] = {'B', 'W', 'G', 'w'};

  std::vector<lab::LabReport> reports;
  for (const auto& stress : loads) {
    std::printf("  measuring %s...\n", stress.name.c_str());
    lab::LabConfig config;
    config.os = kernel::MakeWin98Profile();
    config.stress = stress;
    config.thread_priority = 28;
    config.stress_minutes = minutes;
    config.seed = seed;
    reports.push_back(lab::RunLatencyExperiment(config));
  }
  std::printf("\n");

  std::vector<report::MttfSeries> series;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    report::MttfSeries s;
    s.name = loads[i].name;
    s.mark = kMarks[i];
    // Figure 7's x axis runs 0..64 ms of buffering.
    s.points = analysis::MttfSweep(reports[i].thread_interrupt, 8.0, 64.0, 4.0);
    series.push_back(std::move(s));
  }
  std::fputs(
      report::RenderMttf(
          "Softmodem with Thread-based Datapump MTTF (Windows 98, Data Transfer Mode)", series)
          .c_str(),
      stdout);

  const auto& games = reports[2].thread_interrupt;
  std::printf("\nSection 5.1 anchor (3D games): MTTF at 48 ms buffering = %.0f s"
              " (paper: about an hour = 3600 s)\n",
              analysis::MeanTimeToUnderrunSeconds(games, 48.0));

  // NT check: worst cases below the minimum modem slack (4 ms cycle - 1 ms
  // compute = 3 ms), so the paper forgoes the NT plots.
  lab::LabConfig nt;
  nt.os = kernel::MakeNt4Profile();
  nt.stress = workload::GamesStress();
  nt.thread_priority = 28;
  nt.stress_minutes = minutes;
  nt.seed = seed;
  const lab::LabReport nt_games = lab::RunLatencyExperiment(nt);
  std::printf(
      "NT 4.0 (games) worst cases: DPC interrupt %.2f ms, thread interrupt %.2f ms\n"
      "(paper: \"uniformly below the minimum modem slack time of 3 milliseconds\",\n"
      "so the NT analysis is forgone)\n",
      nt_games.dpc_interrupt.max_ms(), nt_games.thread_interrupt.max_ms());
  return 0;
}
