// Converts google-benchmark JSON output into the repo's BENCH_*.json schema,
// and compares two such files for perf regressions. Used by ci/perf_smoke.sh
// to guard the engine hot path against re-introduced allocations or
// complexity, with the blessed numbers committed at bench/baselines/.
//
//   bench_to_json --convert raw.json --source micro_kernel_ops --out BENCH_micro.json
//   bench_to_json --compare baseline.json candidate.json [--max-ratio 3.0]
//
// The schema is deliberately tiny so it survives benchmark-library upgrades:
//
//   { "schema": "wdmlat-bench-v1",
//     "source": "micro_kernel_ops",
//     "benchmarks": [ { "name": "...", "real_ns": 1.0, "cpu_ns": 1.0,
//                       "iterations": 100 } ] }
//
// Compare mode checks cpu_ns (less host-noise than wall time) of every
// baseline benchmark against the candidate, printing the per-benchmark delta
// percentage, and exits nonzero if any ratio exceeds its limit or a baseline
// benchmark disappeared (renames require re-baselining; see EXPERIMENTS.md).
// The limit is --max-ratio unless the baseline row carries its own
// "max_ratio" field, which overrides it for that benchmark only — a noisy
// benchmark can widen its own gate without loosening the file. The generous
// default ratio of 3.0 tolerates shared-CI noise while still catching
// order-of-magnitude regressions like an accidental allocation on the
// schedule path.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader (src/obs/json.h is a writer/linter
// only). Supports the full value grammar we consume; numbers become doubles.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    JsonValue value;
    SkipWs();
    if (!ParseValue(&value)) {
      return std::nullopt;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return std::nullopt;  // trailing garbage
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeLiteral(const char* literal) {
    const std::size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return ConsumeLiteral("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return ConsumeLiteral("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    Consume('{');
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return false;
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    Consume('[');
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // Benchmark names are ASCII; keep \u simple by emitting '?' for
          // anything outside Latin-1 rather than implementing UTF-16 pairs.
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          const unsigned long code = std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          out->push_back(code < 256 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

struct BenchEntry {
  std::string name;
  double real_ns = 0.0;
  double cpu_ns = 0.0;
  double iterations = 0.0;
  // Per-benchmark regression tolerance from the baseline row ("max_ratio"
  // key); 0 means "use the --max-ratio default". Lets a noisy benchmark
  // carry a wider gate without loosening the whole file.
  double max_ratio = 0.0;
};

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::optional<JsonValue> ParseFile(const std::string& path) {
  const auto text = ReadFile(path);
  if (!text) {
    std::cerr << "bench_to_json: cannot read " << path << "\n";
    return std::nullopt;
  }
  auto value = JsonReader(*text).Parse();
  if (!value) {
    std::cerr << "bench_to_json: " << path << " is not valid JSON\n";
  }
  return value;
}

double ToNs(double value, const std::string& unit) {
  if (unit == "ns") return value;
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  if (unit == "s") return value * 1e9;
  return value;  // google-benchmark default is ns
}

// Pull the per-iteration rows out of google-benchmark's --benchmark_format=
// json output, skipping aggregate rows (mean/median/stddev) if present.
std::optional<std::vector<BenchEntry>> ExtractFromGoogleBenchmark(const JsonValue& root) {
  const JsonValue* benchmarks = root.Find("benchmarks");
  if (benchmarks == nullptr || benchmarks->kind != JsonValue::Kind::kArray) {
    std::cerr << "bench_to_json: no benchmarks array (is this google-benchmark output?)\n";
    return std::nullopt;
  }
  std::vector<BenchEntry> entries;
  for (const JsonValue& row : benchmarks->array) {
    const JsonValue* run_type = row.Find("run_type");
    if (run_type != nullptr && run_type->string != "iteration") {
      continue;
    }
    const JsonValue* name = row.Find("name");
    const JsonValue* real_time = row.Find("real_time");
    const JsonValue* cpu_time = row.Find("cpu_time");
    const JsonValue* iterations = row.Find("iterations");
    if (name == nullptr || real_time == nullptr || cpu_time == nullptr) {
      std::cerr << "bench_to_json: benchmark row missing name/real_time/cpu_time\n";
      return std::nullopt;
    }
    const JsonValue* unit = row.Find("time_unit");
    const std::string time_unit = unit != nullptr ? unit->string : "ns";
    entries.push_back(BenchEntry{name->string, ToNs(real_time->number, time_unit),
                                 ToNs(cpu_time->number, time_unit),
                                 iterations != nullptr ? iterations->number : 0.0});
  }
  return entries;
}

// Read a file already in the wdmlat-bench-v1 schema.
std::optional<std::vector<BenchEntry>> ExtractFromRepoSchema(const std::string& path) {
  const auto root = ParseFile(path);
  if (!root) {
    return std::nullopt;
  }
  const JsonValue* schema = root->Find("schema");
  if (schema == nullptr || schema->string != "wdmlat-bench-v1") {
    std::cerr << "bench_to_json: " << path << " is not wdmlat-bench-v1\n";
    return std::nullopt;
  }
  const JsonValue* benchmarks = root->Find("benchmarks");
  if (benchmarks == nullptr || benchmarks->kind != JsonValue::Kind::kArray) {
    std::cerr << "bench_to_json: " << path << " has no benchmarks array\n";
    return std::nullopt;
  }
  std::vector<BenchEntry> entries;
  for (const JsonValue& row : benchmarks->array) {
    const JsonValue* name = row.Find("name");
    const JsonValue* real_ns = row.Find("real_ns");
    const JsonValue* cpu_ns = row.Find("cpu_ns");
    const JsonValue* iterations = row.Find("iterations");
    if (name == nullptr || real_ns == nullptr || cpu_ns == nullptr) {
      std::cerr << "bench_to_json: " << path << " row missing name/real_ns/cpu_ns\n";
      return std::nullopt;
    }
    const JsonValue* row_ratio = row.Find("max_ratio");
    entries.push_back(BenchEntry{name->string, real_ns->number, cpu_ns->number,
                                 iterations != nullptr ? iterations->number : 0.0,
                                 row_ratio != nullptr ? row_ratio->number : 0.0});
  }
  return entries;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

int Convert(const std::string& raw_path, const std::string& source, const std::string& out_path) {
  const auto root = ParseFile(raw_path);
  if (!root) {
    return 1;
  }
  const auto entries = ExtractFromGoogleBenchmark(*root);
  if (!entries || entries->empty()) {
    std::cerr << "bench_to_json: no benchmark rows in " << raw_path << "\n";
    return 1;
  }
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\n  \"schema\": \"wdmlat-bench-v1\",\n  \"source\": \"" << EscapeJson(source)
      << "\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries->size(); ++i) {
    const BenchEntry& e = (*entries)[i];
    out << "    {\"name\": \"" << EscapeJson(e.name) << "\", \"real_ns\": " << e.real_ns
        << ", \"cpu_ns\": " << e.cpu_ns << ", \"iterations\": " << static_cast<long long>(e.iterations)
        << "}" << (i + 1 < entries->size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "bench_to_json: cannot write " << out_path << "\n";
    return 1;
  }
  file << out.str();
  std::cout << "bench_to_json: wrote " << entries->size() << " benchmarks to " << out_path << "\n";
  return 0;
}

int Compare(const std::string& baseline_path, const std::string& candidate_path,
            double max_ratio) {
  const auto baseline = ExtractFromRepoSchema(baseline_path);
  const auto candidate = ExtractFromRepoSchema(candidate_path);
  if (!baseline || !candidate) {
    return 1;
  }
  int failures = 0;
  std::vector<std::string> missing;
  for (const BenchEntry& base : *baseline) {
    const BenchEntry* cand = nullptr;
    for (const BenchEntry& c : *candidate) {
      if (c.name == base.name) {
        cand = &c;
        break;
      }
    }
    if (cand == nullptr) {
      std::cerr << "FAIL " << base.name << ": missing from candidate (re-baseline after renames)\n";
      missing.push_back(base.name);
      continue;
    }
    if (base.cpu_ns <= 0.0) {
      std::cerr << "FAIL " << base.name << ": baseline cpu_ns is not positive\n";
      ++failures;
      continue;
    }
    // A baseline row can carry its own "max_ratio" gate; --max-ratio is the
    // default for rows without one.
    const double limit = base.max_ratio > 0.0 ? base.max_ratio : max_ratio;
    const double ratio = cand->cpu_ns / base.cpu_ns;
    const double delta_pct = (ratio - 1.0) * 100.0;
    const bool ok = ratio <= limit;
    char delta[64];
    std::snprintf(delta, sizeof(delta), "%+.1f%%", delta_pct);
    std::cout << (ok ? "ok   " : "FAIL ") << base.name << ": cpu " << base.cpu_ns << " -> "
              << cand->cpu_ns << " ns (" << delta << ", " << ratio << "x, limit " << limit
              << "x" << (base.max_ratio > 0.0 ? ", per-benchmark" : "") << ")\n";
    if (!ok) {
      ++failures;
    }
  }
  for (const BenchEntry& c : *candidate) {
    bool known = false;
    for (const BenchEntry& base : *baseline) {
      known = known || base.name == c.name;
    }
    if (!known) {
      std::cout << "new  " << c.name << ": not in baseline (informational)\n";
    }
  }
  // Missing entries are their own failure class, reported by name: a
  // baseline benchmark that silently disappears from the run would otherwise
  // exempt itself from the gate forever.
  if (!missing.empty()) {
    std::cerr << "bench_to_json: " << missing.size()
              << " baseline benchmark(s) missing from candidate:";
    for (const std::string& name : missing) {
      std::cerr << " " << name;
    }
    std::cerr << "\n";
  }
  if (failures > 0) {
    std::cerr << "bench_to_json: " << failures << " benchmark(s) regressed past " << max_ratio
              << "x\n";
  }
  if (failures > 0 || !missing.empty()) {
    return 1;
  }
  std::cout << "bench_to_json: all " << baseline->size() << " benchmarks within " << max_ratio
            << "x of baseline\n";
  return 0;
}

int Usage() {
  std::cerr
      << "usage:\n"
      << "  bench_to_json --convert RAW.json --source NAME --out OUT.json\n"
      << "  bench_to_json --compare BASELINE.json CANDIDATE.json [--max-ratio 3.0]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return Usage();
  }
  if (args[0] == "--convert") {
    std::string raw;
    std::string source = "unknown";
    std::string out;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--source" && i + 1 < args.size()) {
        source = args[++i];
      } else if (args[i] == "--out" && i + 1 < args.size()) {
        out = args[++i];
      } else if (raw.empty()) {
        raw = args[i];
      } else {
        return Usage();
      }
    }
    if (raw.empty() || out.empty()) {
      return Usage();
    }
    return Convert(raw, source, out);
  }
  if (args[0] == "--compare") {
    std::string baseline;
    std::string candidate;
    double max_ratio = 3.0;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--max-ratio" && i + 1 < args.size()) {
        max_ratio = std::strtod(args[++i].c_str(), nullptr);
      } else if (baseline.empty()) {
        baseline = args[i];
      } else if (candidate.empty()) {
        candidate = args[i];
      } else {
        return Usage();
      }
    }
    if (baseline.empty() || candidate.empty() || max_ratio <= 0.0) {
      return Usage();
    }
    return Compare(baseline, candidate, max_ratio);
  }
  return Usage();
}
