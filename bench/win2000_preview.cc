// Section 6.1 monitoring: Windows 2000 Beta latency preview.
//
// "We have completed evaluations of Windows 98 [5] and Windows NT 4.0 and
// continue to monitor the performance of Beta releases of Windows 2000."
// This bench runs the three personalities side by side under the games load
// and reports the real-time service a WDM driver would receive from each —
// the question the Intel team was tracking into the Windows 2000 era.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/profile.h"
#include "src/lab/lab.h"
#include "src/report/ascii_table.h"
#include "src/stats/usage_model.h"
#include "src/workload/stress_profile.h"

int main() {
  using namespace wdmlat;
  const double minutes = bench::MeasurementMinutes(10.0);
  std::printf(
      "Windows 2000 Beta latency preview (Section 6.1 monitoring), 3D games\n"
      "load, %.1f virtual minutes per OS.\n\n",
      minutes);

  report::AsciiTable table({"OS", "DPC int 99.99% (ms)", "DPC int max (ms)",
                            "Thread 28 99.99% (ms)", "Thread 28 max (ms)",
                            "Hourly worst thread (ms)"});
  struct Row {
    kernel::KernelProfile (*make)();
  };
  for (auto make :
       {kernel::MakeNt4Profile, kernel::MakeWin2000BetaProfile, kernel::MakeWin98Profile}) {
    lab::LabConfig config;
    config.os = make();
    config.stress = workload::GamesStress();
    config.thread_priority = 28;
    config.stress_minutes = minutes;
    config.seed = bench::BenchSeed();
    std::printf("  measuring %s...\n", config.os.name.c_str());
    const lab::LabReport report = lab::RunLatencyExperiment(config);
    const auto wc =
        stats::ComputeWorstCases(report.thread, report.samples_per_hour, report.usage);
    table.AddRow({report.os_name, report::AsciiTable::Fmt(report.dpc_interrupt.QuantileMs(0.9999), 2),
                  report::AsciiTable::Fmt(report.dpc_interrupt.max_ms(), 2),
                  report::AsciiTable::Fmt(report.thread.QuantileMs(0.9999), 2),
                  report::AsciiTable::Fmt(report.thread.max_ms(), 2),
                  report::AsciiTable::Fmt(wc.hourly_ms, 2)});
  }
  std::printf("\n");
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: the beta is modestly noisier than the tuned NT 4.0\n"
      "release but keeps the full order-of-magnitude advantage over Windows 98 —\n"
      "the WDM hierarchy, not tuning, is what buys real-time service.\n");
  return 0;
}
