// Shared helpers for the reproduction bench binaries.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>

#include "src/runtime/thread_pool.h"

namespace wdmlat::bench {

// Virtual measurement minutes per experiment cell. The default keeps every
// bench under ~a minute of wall time; set WDMLAT_MINUTES for deeper tails
// (the paper collected 4-12.5 hours per workload).
inline double MeasurementMinutes(double default_minutes = 8.0) {
  if (const char* env = std::getenv("WDMLAT_MINUTES")) {
    const double value = std::atof(env);
    if (value > 0.0) {
      return value;
    }
  }
  return default_minutes;
}

inline std::uint64_t BenchSeed() {
  if (const char* env = std::getenv("WDMLAT_SEED")) {
    return static_cast<std::uint64_t>(std::atoll(env));
  }
  return 1999;  // OSDI '99
}

// Worker threads for matrix-driven benches: WDMLAT_JOBS, else every core.
// Merged results are bit-identical for any value (see src/lab/matrix.h).
inline int BenchJobs() {
  if (const char* env = std::getenv("WDMLAT_JOBS")) {
    const int value = std::atoi(env);
    if (value > 0) {
      return value;
    }
  }
  return runtime::ThreadPool::HardwareThreads();
}

}  // namespace wdmlat::bench

#endif  // BENCH_BENCH_UTIL_H_
