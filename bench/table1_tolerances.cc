// Reproduction of Table 1: "Range of Latency Tolerances for Several
// Multimedia and Signal Processing Applications."
//
// Pure model output: latency tolerance is (n-1)*t for n buffers of t ms.
// We print the buffer parameter ranges, the paper's printed tolerance range,
// and the ranges computed from the caption's formula and from the full
// parameter span (the paper's rows are not all consistent with its own
// caption formula — see EXPERIMENTS.md).

#include <cstdio>

#include "src/analysis/tolerance.h"
#include "src/report/ascii_table.h"

int main() {
  using wdmlat::analysis::ComputeToleranceRange;
  using wdmlat::analysis::Table1Apps;
  using wdmlat::analysis::ToleranceRange;
  using wdmlat::report::AsciiTable;

  std::printf(
      "Table 1 reproduction: latency tolerances, tolerance = (n-1) * t for n\n"
      "buffers of t milliseconds.\n\n");

  AsciiTable table({"Application", "Buffer size t (ms)", "Buffers n", "Paper tolerance (ms)",
                    "Caption formula (ms)", "Full span (ms)"});
  for (const auto& app : Table1Apps()) {
    const ToleranceRange range = ComputeToleranceRange(app);
    table.AddRow({app.name,
                  AsciiTable::Fmt(app.buffer_ms_min, 0) + " to " +
                      AsciiTable::Fmt(app.buffer_ms_max, 0),
                  std::to_string(app.buffers_min) + " to " + std::to_string(app.buffers_max),
                  AsciiTable::Fmt(app.paper_tolerance_lo_ms, 0) + " to " +
                      AsciiTable::Fmt(app.paper_tolerance_hi_ms, 0),
                  AsciiTable::Fmt(range.caption_lo_ms, 0) + " to " +
                      AsciiTable::Fmt(range.caption_hi_ms, 0),
                  AsciiTable::Fmt(range.full_lo_ms, 0) + " to " +
                      AsciiTable::Fmt(range.full_hi_ms, 0)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nNote (paper Section 1): \"the two most processor-intensive applications,\n"
      "ADSL and video at 20 to 30 fps, are at opposite ends of the latency\n"
      "tolerance spectrum.\"\n");
  return 0;
}
