// Reproduction of Figure 6: "Mean Time to Buffer Underrun for a DPC-based
// Datapump of a Soft Modem on Windows 98 in Data Transfer Mode."
//
// The datapump takes 25% of the 300 MHz CPU; MTTF is computed from the
// measured DPC interrupt latency tables by the paper's slack-time method
// (Section 5). Calibration anchors from Section 5.1: with 12 ms of
// buffering, roughly one miss every 12-15 minutes while playing an average
// 3D game; with 20 ms, about an hour between misses.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/mttf.h"
#include "src/kernel/profile.h"
#include "src/lab/lab.h"
#include "src/report/loglog_plot.h"
#include "src/workload/stress_profile.h"

int main() {
  using namespace wdmlat;
  const double minutes = bench::MeasurementMinutes(20.0);
  const std::uint64_t seed = bench::BenchSeed();
  std::printf(
      "Figure 6 reproduction: MTTF for a DPC-based soft-modem datapump on\n"
      "Windows 98 (25%% CPU datapump, double buffered). %.1f virtual minutes\n"
      "per workload.\n\n",
      minutes);

  const std::vector<workload::StressProfile> loads = {
      workload::OfficeStress(), workload::WorkstationStress(), workload::GamesStress(),
      workload::WebStress()};
  const char kMarks[] = {'B', 'W', 'G', 'w'};

  std::vector<report::MttfSeries> series;
  std::vector<lab::LabReport> reports;
  reports.reserve(loads.size());
  for (const auto& stress : loads) {
    std::printf("  measuring %s...\n", stress.name.c_str());
    lab::LabConfig config;
    config.os = kernel::MakeWin98Profile();
    config.stress = stress;
    config.thread_priority = 28;
    config.stress_minutes = minutes;
    config.seed = seed;
    reports.push_back(lab::RunLatencyExperiment(config));
  }
  std::printf("\n");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    report::MttfSeries s;
    s.name = loads[i].name;
    s.mark = kMarks[i];
    // A DPC-based datapump is dispatched by its DPC: index the DPC interrupt
    // latency table (Figure 6's x axis runs 0..32 ms of buffering).
    s.points = analysis::MttfSweep(reports[i].dpc_interrupt, 4.0, 32.0, 2.0);
    series.push_back(std::move(s));
  }

  std::fputs(report::RenderMttf(
                 "Softmodem with DPC-based Datapump MTTF (Windows 98, Data Transfer Mode)",
                 series)
                 .c_str(),
             stdout);

  // Section 5.1 anchors.
  const auto& games = reports[2].dpc_interrupt;
  const double mttf12 = analysis::MeanTimeToUnderrunSeconds(games, 12.0);
  const double mttf20 = analysis::MeanTimeToUnderrunSeconds(games, 20.0);
  std::printf(
      "\nSection 5.1 anchors (3D games):\n"
      "  12 ms buffering: MTTF %.0f s (paper: one miss every 12-15 min = 720-900 s)\n"
      "  20 ms buffering: MTTF %.0f s (paper: about an hour = 3600 s)\n",
      mttf12, mttf20);
  return 0;
}
