// Reproduction of Table 4: "Thread Latency Cause Tool Output, Windows 98
// with Business Apps and the Default Sound Scheme."
//
// The cause tool hooks the PIT interrupt vector, samples what was executing
// (module+function) on every tick into a circular buffer, and dumps the
// buffer whenever the thread-latency tool reports a latency above the
// threshold. The paper's two sample episodes caught SysAudio topology
// processing and VMM contiguous-memory allocation red-handed; our Windows 98
// sound-scheme substrate injects exactly those code paths, so the episodes
// show the same culprits.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/drivers/cause_tool.h"
#include "src/drivers/latency_driver.h"
#include "src/fault/fault.h"
#include "src/fault/injector.h"
#include "src/kernel/profile.h"
#include "src/lab/test_system.h"
#include "src/obs/anatomy.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/trace_fanout.h"
#include "src/workload/stress_load.h"

int main() {
  using namespace wdmlat;
  const double minutes = bench::MeasurementMinutes(10.0);
  std::printf(
      "Table 4 reproduction: latency cause tool episodes, Windows 98, Business\n"
      "Apps, default sound scheme. %.1f virtual minutes.\n\n",
      minutes);

  lab::TestSystemOptions options;
  options.sound_scheme = vmm98::SchemeKind::kDefault;
  lab::TestSystem system(kernel::MakeWin98Profile(), bench::BenchSeed(), options);

  drivers::LatencyDriver driver(system.kernel(), drivers::LatencyDriver::Config{});
  drivers::CauseTool::Config tool_config;
  tool_config.threshold_ms = 6.0;
  drivers::CauseTool tool(system.kernel(), driver, tool_config);

  // Flight recorder on the same threshold: its dispatcher-trace ground truth
  // scores the cause tool's IP-sampling attribution below.
  obs::EpisodeFlightRecorder::Config rec_config;
  rec_config.threshold_ms = tool_config.threshold_ms;
  obs::EpisodeFlightRecorder recorder(system.kernel(), rec_config);

  workload::StressLoad load(system.deps(), workload::OfficeStress(), system.ForkRng());

  driver.Start();
  tool.Start();
  recorder.Arm(driver, &tool);
  system.kernel().dispatcher().set_trace_sink(recorder.trace_sink());
  load.Start();
  system.RunForMinutes(minutes);
  system.kernel().dispatcher().set_trace_sink(nullptr);

  std::printf("Hook samples taken: %llu; episodes above %.1f ms: %zu\n\n",
              static_cast<unsigned long long>(tool.hook_samples()), tool_config.threshold_ms,
              tool.episodes().size());
  std::fputs(tool.AnalysisReport(6).c_str(), stdout);
  std::printf(
      "Paper's episodes (for comparison):\n"
      "  episode 0: VMM!@KfLowerIrql(1), NTKERN!_ExpAllocatePool(1),\n"
      "             SYSAUDIO!_ProcessTopologyConnection(1), VMM!_mmCalcFrameBadness(2)\n"
      "  episode 1: SYSAUDIO!_ProcessTopologyConnection(1), VMM!_mmCalcFrameBadness(2),\n"
      "             VMM!_mmFindContig(2), KMIXER!unknown(1)\n");

  // Score the paper's methodology: does PIT-tick IP sampling finger the
  // module the dispatcher trace says actually consumed the episode?
  std::printf("\n%s", obs::RenderAttributionReport(recorder.Summaries()).c_str());
  const obs::AttributionScore emergent = obs::ScoreAttribution(recorder.Summaries());

  // Phase 2: injected ground truth. Phase 1's ground truth is *emergent* —
  // the dispatcher trace decides post hoc which module dominated each
  // episode. Here the tables turn: a fault plan drives FAULTINJ-labelled ISR
  // overruns long enough to trip the threshold on their own, so the
  // experimenter knows a priori who the culprit is, and the question becomes
  // how often the PIT-hook sampling catches the known aggressor red-handed.
  std::printf("\nInjected ground truth: FAULTINJ ISR overruns on the same cell\n");

  lab::TestSystem injected_system(kernel::MakeWin98Profile(), bench::BenchSeed(), options);
  drivers::LatencyDriver injected_driver(injected_system.kernel(),
                                         drivers::LatencyDriver::Config{});
  drivers::CauseTool injected_tool(injected_system.kernel(), injected_driver, tool_config);
  obs::EpisodeFlightRecorder injected_recorder(injected_system.kernel(), rec_config);

  fault::FaultPlan plan;
  plan.name = "table4_injected";
  plan.seed = 0x7AB1E4;
  fault::FaultSpec overrun;
  overrun.kind = fault::FaultKind::kIsrOverrun;
  overrun.trigger = fault::TriggerKind::kPoisson;
  overrun.rate_per_s = 1.5;
  overrun.duration_us = sim::DurationDist::Uniform(7000.0, 15000.0);
  overrun.function = "_InjectedOverrun";
  plan.specs.push_back(overrun);

  fault::InjectorTargets targets;
  targets.kernel = &injected_system.kernel();
  targets.disk = &injected_system.disk_driver();
  fault::Injector injector(targets, plan, bench::BenchSeed());

  workload::StressLoad injected_load(injected_system.deps(), workload::OfficeStress(),
                                     injected_system.ForkRng());

  injected_driver.Start();
  injected_tool.Start();
  injected_recorder.Arm(injected_driver, &injected_tool);
  injected_system.kernel().dispatcher().set_trace_sink(injected_recorder.trace_sink());
  injector.Start();
  injected_load.Start();
  injected_system.RunForMinutes(minutes);
  injector.Stop();
  injected_system.kernel().dispatcher().set_trace_sink(nullptr);

  const obs::InjectedGroundTruthScore injected =
      obs::ScoreInjectedGroundTruth(injected_recorder.Summaries());
  std::printf(
      "  %llu activations; %llu episodes, %llu blamed on FAULTINJ (%.0f%%),\n"
      "  %llu attributed by the tool, %llu pinned on FAULTINJ: tool accuracy %.0f%%\n",
      static_cast<unsigned long long>(injector.activation_count()),
      static_cast<unsigned long long>(injected.episodes),
      static_cast<unsigned long long>(injected.injected_blamed),
      100.0 * injected.InjectedShare(),
      static_cast<unsigned long long>(injected.attributed),
      static_cast<unsigned long long>(injected.tool_agreed), 100.0 * injected.ToolAccuracy());
  std::printf(
      "  verdict: injected-ground-truth accuracy %.0f%% vs emergent baseline %.0f%% [%s]\n",
      100.0 * injected.ToolAccuracy(), 100.0 * emergent.ModuleAccuracy(),
      injected.ToolAccuracy() >= emergent.ModuleAccuracy() ? "ok" : "BELOW BASELINE");

  // Phase 3: Section 6.1 sampling sweep, graded against the causal anatomy.
  // The paper's planned enhancement replaces the maskable PIT hook with
  // performance-counter NMIs; the anatomy sink's exact critical-path culprit
  // (from the dispatcher trace, no sampling involved) is the referee. Each
  // sweep point re-runs the same cell with one sampler configuration, and
  // ScoreSamplingVsAnatomy counts how often the sampler's verdict matches
  // the exact culprit module.
  struct SweepPoint {
    const char* name;
    drivers::CauseTool::Sampling sampling;
    double nmi_period_ms;  // ignored by the PIT hook
  };
  const SweepPoint kSamplers[] = {
      {"pit-hook  (1 ms ticks)", drivers::CauseTool::Sampling::kPitHook, 0.0},
      {"nmi 0.50 ms", drivers::CauseTool::Sampling::kPerfCounterNmi, 0.5},
      {"nmi 0.20 ms", drivers::CauseTool::Sampling::kPerfCounterNmi, 0.2},
      {"nmi 0.05 ms", drivers::CauseTool::Sampling::kPerfCounterNmi, 0.05},
  };
  const double kThresholds[] = {2.0, 6.0};
  const double sweep_minutes = minutes / 2.0;

  std::printf(
      "\nSampling sweep vs anatomy ground truth (%.1f virtual minutes per point):\n"
      "  %-24s %-9s %-9s %-11s %-9s %s\n",
      sweep_minutes, "sampler", "thresh", "episodes", "attributed", "matches",
      "accuracy");
  for (const SweepPoint& point : kSamplers) {
    for (const double threshold_ms : kThresholds) {
      lab::TestSystem sweep_system(kernel::MakeWin98Profile(), bench::BenchSeed(), options);
      drivers::LatencyDriver sweep_driver(sweep_system.kernel(),
                                          drivers::LatencyDriver::Config{});
      drivers::CauseTool::Config sweep_config;
      sweep_config.threshold_ms = threshold_ms;
      sweep_config.sampling = point.sampling;
      if (point.nmi_period_ms > 0.0) {
        sweep_config.nmi_period_ms = point.nmi_period_ms;
      }
      drivers::CauseTool sweep_tool(sweep_system.kernel(), sweep_driver, sweep_config);
      obs::EpisodeFlightRecorder::Config sweep_rec_config;
      sweep_rec_config.threshold_ms = threshold_ms;
      obs::EpisodeFlightRecorder sweep_recorder(sweep_system.kernel(), sweep_rec_config);
      obs::LatencyAnatomy::Config anatomy_config;
      anatomy_config.max_episodes = 256;
      obs::LatencyAnatomy anatomy(anatomy_config);

      workload::StressLoad sweep_load(sweep_system.deps(), workload::OfficeStress(),
                                      sweep_system.ForkRng());

      sweep_driver.Start();
      sweep_tool.Start();
      sweep_recorder.Arm(sweep_driver, &sweep_tool);
      // Registered after the tool and recorder so anatomy records pair with
      // the recorder's summaries by index (the lab wiring's contract).
      sweep_driver.AddLongLatencyCallback(threshold_ms, [&anatomy, &sweep_driver](double ms) {
        const drivers::LatencyDriver::SampleStamps& stamps = sweep_driver.last_stamps();
        anatomy.OnEpisode(ms, stamps.dpc_tsc, stamps.thread_tsc);
      });
      obs::TraceFanout fanout;
      fanout.Add(sweep_recorder.trace_sink());
      fanout.Add(&anatomy);
      sweep_system.kernel().dispatcher().set_trace_sink(&fanout);
      sweep_load.Start();
      sweep_system.RunForMinutes(sweep_minutes);
      sweep_system.kernel().dispatcher().set_trace_sink(nullptr);

      const obs::AnatomyAgreement agreement =
          obs::ScoreSamplingVsAnatomy(sweep_recorder.Summaries(), anatomy.episodes());
      std::printf("  %-24s %5.1f ms %-9llu %-11llu %-9llu %.0f%%\n", point.name,
                  threshold_ms, static_cast<unsigned long long>(agreement.episodes),
                  static_cast<unsigned long long>(agreement.attributed),
                  static_cast<unsigned long long>(agreement.culprit_matches),
                  100.0 * agreement.Accuracy());
    }
  }

  // Phase 4: the same sampler sweep graded against *injected* ground truth.
  // Phase 3's referee is the anatomy sink (exact, but itself a model); here
  // the FAULTINJ plan from phase 2 names the culprit a priori, so every
  // sweep point answers the operational question directly — at this sampler
  // rate and threshold, how often does the tool catch a known aggressor?
  // The grid lands in a small CSV (WDMLAT_CSV, default
  // table4_sampling_sweep.csv) for the EXPERIMENTS.md plotting recipe.
  const char* csv_path = std::getenv("WDMLAT_CSV");
  if (csv_path == nullptr || csv_path[0] == '\0') {
    csv_path = "table4_sampling_sweep.csv";
  }
  std::FILE* csv = std::fopen(csv_path, "w");
  if (csv == nullptr) {
    std::fprintf(stderr, "table4: cannot open %s for writing\n", csv_path);
    return 1;
  }
  std::fprintf(csv,
               "sampler,nmi_period_ms,threshold_ms,activations,episodes,"
               "injected_blamed,attributed,tool_agreed,injected_share,"
               "tool_accuracy\n");
  std::printf(
      "\nSampling sweep vs injected ground truth (%.1f virtual minutes per point):\n"
      "  %-24s %-9s %-9s %-11s %-9s %s\n",
      sweep_minutes, "sampler", "thresh", "episodes", "attributed", "agreed",
      "accuracy");
  for (const SweepPoint& point : kSamplers) {
    for (const double threshold_ms : kThresholds) {
      lab::TestSystem sweep_system(kernel::MakeWin98Profile(), bench::BenchSeed(), options);
      drivers::LatencyDriver sweep_driver(sweep_system.kernel(),
                                          drivers::LatencyDriver::Config{});
      drivers::CauseTool::Config sweep_config;
      sweep_config.threshold_ms = threshold_ms;
      sweep_config.sampling = point.sampling;
      if (point.nmi_period_ms > 0.0) {
        sweep_config.nmi_period_ms = point.nmi_period_ms;
      }
      drivers::CauseTool sweep_tool(sweep_system.kernel(), sweep_driver, sweep_config);
      obs::EpisodeFlightRecorder::Config sweep_rec_config;
      sweep_rec_config.threshold_ms = threshold_ms;
      obs::EpisodeFlightRecorder sweep_recorder(sweep_system.kernel(), sweep_rec_config);

      fault::InjectorTargets sweep_targets;
      sweep_targets.kernel = &sweep_system.kernel();
      sweep_targets.disk = &sweep_system.disk_driver();
      fault::Injector sweep_injector(sweep_targets, plan, bench::BenchSeed());

      workload::StressLoad sweep_load(sweep_system.deps(), workload::OfficeStress(),
                                      sweep_system.ForkRng());

      sweep_driver.Start();
      sweep_tool.Start();
      sweep_recorder.Arm(sweep_driver, &sweep_tool);
      sweep_system.kernel().dispatcher().set_trace_sink(sweep_recorder.trace_sink());
      sweep_injector.Start();
      sweep_load.Start();
      sweep_system.RunForMinutes(sweep_minutes);
      sweep_injector.Stop();
      sweep_system.kernel().dispatcher().set_trace_sink(nullptr);

      const obs::InjectedGroundTruthScore score =
          obs::ScoreInjectedGroundTruth(sweep_recorder.Summaries());
      std::printf("  %-24s %5.1f ms %-9llu %-11llu %-9llu %.0f%%\n", point.name,
                  threshold_ms, static_cast<unsigned long long>(score.episodes),
                  static_cast<unsigned long long>(score.attributed),
                  static_cast<unsigned long long>(score.tool_agreed),
                  100.0 * score.ToolAccuracy());
      std::fprintf(csv, "%s,%.3f,%.3f,%llu,%llu,%llu,%llu,%llu,%.6f,%.6f\n",
                   point.sampling == drivers::CauseTool::Sampling::kPitHook ? "pit_hook"
                                                                            : "nmi",
                   point.nmi_period_ms, threshold_ms,
                   static_cast<unsigned long long>(sweep_injector.activation_count()),
                   static_cast<unsigned long long>(score.episodes),
                   static_cast<unsigned long long>(score.injected_blamed),
                   static_cast<unsigned long long>(score.attributed),
                   static_cast<unsigned long long>(score.tool_agreed),
                   score.InjectedShare(), score.ToolAccuracy());
    }
  }
  std::fclose(csv);
  std::printf("\nSweep grid written to %s\n", csv_path);
  return 0;
}
