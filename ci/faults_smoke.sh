#!/usr/bin/env bash
# Smoke test for the fault-injection subsystem: run the built-in virus_scan
# plan as a differential A/B experiment on the paper's Figure-5 cell
# (Win98 / office), then validate the outputs.
#
#   * the report must show the worst-case thread latency increasing under
#     the plan (the Figure-5 effect: the scanner's lockout holds stretch
#     the tail by orders of magnitude)
#   * the --diff-out JSON must be well-formed with the documented top-level
#     keys (plan, baseline, perturbed, shifts)
#   * a JSON plan file must round-trip through the parser and drive the
#     same machinery as a built-in plan
#
# Validation uses wdmlat_json_check (the repo's own RFC 8259 linter) so the
# script needs no python or third-party JSON tooling. Registered as the
# `faults_smoke` ctest; also runnable standalone from the repo root:
#
#   ci/faults_smoke.sh                # builds nothing, expects build/ to exist
#   BUILD_DIR=build-foo ci/faults_smoke.sh

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
RUN="${BUILD_DIR}/cli/wdmlat_run"
CHECK="${BUILD_DIR}/cli/wdmlat_json_check"

if [[ ! -x "${RUN}" || ! -x "${CHECK}" ]]; then
  echo "faults_smoke: missing ${RUN} or ${CHECK}; build the tree first" >&2
  exit 1
fi

OUT="$(mktemp -d "${TMPDIR:-/tmp}/wdmlat_faults_smoke.XXXXXX")"
trap 'rm -rf "${OUT}"' EXIT

# The acceptance cell: virus_scan differential on seeded Win98 / office.
"${RUN}" --os win98 --workload office --priority 24 --minutes 0.5 --seed 1999 \
  --faults virus_scan --differential \
  --diff-out "${OUT}/diff.json" --diff-csv "${OUT}/diff.csv" > "${OUT}/diff.log"

"${CHECK}" "${OUT}/diff.json" --require-key=plan --require-key=baseline \
  --require-key=perturbed --require-key=shifts

head -1 "${OUT}/diff.csv" | grep -q '^metric,statistic,baseline,perturbed$' \
  || { echo "faults_smoke: bad differential CSV header" >&2; exit 1; }

grep -q 'observed max ms' "${OUT}/diff.log" \
  || { echo "faults_smoke: missing worst-case row in report" >&2; exit 1; }

# The Figure-5 effect: the plan must make the observed worst-case thread
# latency strictly worse than baseline (by a wide margin; require > 1.5x).
awk -F, '$1 == "thread" && $2 == "max_ms" {
  if (!($4 > 1.5 * $3)) {
    printf "faults_smoke: virus_scan did not degrade worst case (%s -> %s ms)\n", $3, $4
    exit 1
  }
}' "${OUT}/diff.csv"

# A JSON plan file must drive the same machinery: a one-shot dispatch
# lockout hold fired once at 10 ms.
cat > "${OUT}/plan.json" <<'EOF'
{
  "name": "smoke_lockout",
  "seed": 7,
  "faults": [
    {"kind": "lockout_hold", "trigger": "one_shot", "at_ms": 10.0,
     "duration_us": 2000.0, "function": "_SmokeHold"}
  ]
}
EOF
"${RUN}" --os nt4 --workload games --minutes 0.1 --seed 3 \
  --faults "${OUT}/plan.json" > "${OUT}/plan.log"
grep -q 'fault plan "smoke_lockout": 1 activation' "${OUT}/plan.log" \
  || { echo "faults_smoke: JSON plan did not fire" >&2; exit 1; }

# Matrix mode accepts a plan too and stays deterministic across --jobs.
"${RUN}" --matrix --jobs 1 --minutes 0.05 --seed 1999 --faults masked_window \
  > "${OUT}/m1.log"
"${RUN}" --matrix --jobs 4 --minutes 0.05 --seed 1999 --faults masked_window \
  > "${OUT}/m4.log"
# Strip the lines that legitimately vary across --jobs: the completion
# order, the wall-clock summary, and the headers that echo the jobs count.
sed -e '/done:/d' -e '/(seed /d' -e '/s wall/d' -e '/jobs/d' "${OUT}/m1.log" > "${OUT}/m1.rows"
sed -e '/done:/d' -e '/(seed /d' -e '/s wall/d' -e '/jobs/d' "${OUT}/m4.log" > "${OUT}/m4.rows"
cmp -s "${OUT}/m1.rows" "${OUT}/m4.rows" \
  || { echo "faults_smoke: matrix results differ across --jobs" >&2; exit 1; }

echo "faults_smoke: OK"
