#!/usr/bin/env bash
# Smoke test for the fleet population runner (wdmlat_run --fleet):
#
#   * a ~200-cell, 2-cohort population spec shards 3 ways across worker
#     processes, merges in grid order, and writes <out>/fleet.json
#   * the merged report and every shard record line pass wdmlat_json_check
#   * re-running the same command restores every cell from the shard
#     record files (0 executed) and re-merges to a byte-identical report —
#     the merge is a pure fold over the artifacts
#   * the CLI contract holds: --shard without --fleet is a usage error
#
# Registered as the `fleet_smoke` ctest; also runnable standalone from the
# repo root:
#
#   ci/fleet_smoke.sh                 # builds nothing, expects build/ to exist
#   BUILD_DIR=build-foo ci/fleet_smoke.sh

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
RUN="${BUILD_DIR}/cli/wdmlat_run"
CHECK="${BUILD_DIR}/cli/wdmlat_json_check"

if [[ ! -x "${RUN}" || ! -x "${CHECK}" ]]; then
  echo "fleet_smoke: missing ${RUN} or ${CHECK}; build the tree first" >&2
  exit 1
fi

OUT="$(mktemp -d "${TMPDIR:-/tmp}/wdmlat_fleet_smoke.XXXXXX")"
trap 'rm -rf "${OUT}"' EXIT

# ~200 cells, 2 cohorts: an NT 4.0 office/web mix over a 133-450 MHz speed
# range, and a Windows 98 games cohort with a 30% IRQ-storm fault prior and
# streaming sketches on. Cells are screening-length at an 8 kHz PIT — long
# enough to keep real samples past the driver's 16-sample reprogram
# discard, short enough that the point stays the sharding and merge
# machinery, not per-cell depth.
cat > "${OUT}/population.json" <<'EOF'
{
  "name": "smoke-population",
  "master_seed": 1999,
  "cohorts": [
    {
      "name": "nt-office",
      "os": "nt4",
      "workloads": ["office", "web"],
      "workload_weights": [3, 1],
      "count": 104,
      "stress_minutes": 0.0002,
      "warmup_seconds": 0.005,
      "pit_hz": 8000,
      "speed_mhz": [133, 450]
    },
    {
      "name": "98-games",
      "os": "win98",
      "workloads": ["games"],
      "count": 96,
      "stress_minutes": 0.0002,
      "warmup_seconds": 0.005,
      "pit_hz": 8000,
      "speed_mhz": [200, 400],
      "fault_plan": "irq_storm",
      "fault_prob": 0.3,
      "sketch": true
    }
  ]
}
EOF

FLEET=(--fleet "${OUT}/population.json" --shards 3 --jobs 2
       --fleet-out "${OUT}/run")

# First run: 3 worker processes, grid-order merge, fleet.json on disk.
"${RUN}" "${FLEET[@]}" > "${OUT}/first.log"
[[ -s "${OUT}/run/fleet.json" ]] \
  || { echo "fleet_smoke: first run left no fleet.json" >&2; exit 1; }
for k in 0 1 2; do
  [[ -s "${OUT}/run/shard_${k}_of_3.jsonl" ]] \
    || { echo "fleet_smoke: missing shard ${k} record file" >&2; exit 1; }
done
[[ "$(grep -c '^  \(nt-office\|98-games\)' "${OUT}/first.log")" -eq 2 ]] \
  || { echo "fleet_smoke: merged table should list both cohorts" >&2; exit 1; }
# Both cohorts pooled real samples — a regime shorter than the driver's
# 16-sample PIT-reprogram discard would merge vacuous histograms and prove
# nothing.
grep '^  \(nt-office\|98-games\)' "${OUT}/first.log" | awk '$5 <= 0 {exit 1}' \
  || { echo "fleet_smoke: a cohort pooled zero samples" >&2; exit 1; }

# The merged report is a valid JSON document with the fleet schema keys.
"${CHECK}" "${OUT}/run/fleet.json" \
  --require-key=format --require-key=fingerprint --require-key=cohorts \
  || { echo "fleet_smoke: fleet.json failed wdmlat_json_check" >&2; exit 1; }

# Every shard record line is itself a valid JSON document.
lines=0
for k in 0 1 2; do
  while IFS= read -r line; do
    lines=$((lines + 1))
    printf '%s\n' "${line}" > "${OUT}/record.json"
    "${CHECK}" "${OUT}/record.json" --require-key=cell --require-key=checksum \
      > /dev/null \
      || { echo "fleet_smoke: shard ${k} record ${lines} failed json check" >&2
           exit 1; }
  done < "${OUT}/run/shard_${k}_of_3.jsonl"
done
[[ "${lines}" -eq 200 ]] \
  || { echo "fleet_smoke: expected 200 shard records, saw ${lines}" >&2; exit 1; }

# Second run over the same artifacts: every cell restores from its shard
# record (nothing executes), and the re-merged report is byte-identical —
# the merge is a deterministic fold over the record files alone.
first_sum="$(cksum < "${OUT}/run/fleet.json")"
"${RUN}" "${FLEET[@]}" > "${OUT}/second.log"
[[ "$(grep -c 'restored, 0 executed' "${OUT}/second.log")" -eq 3 ]] \
  || { echo "fleet_smoke: second run should restore all 3 shards" >&2; exit 1; }
second_sum="$(cksum < "${OUT}/run/fleet.json")"
[[ "${first_sum}" == "${second_sum}" ]] \
  || { echo "fleet_smoke: re-merged fleet.json differs from the first run" >&2
       exit 1; }

# CLI contract: --shard is a worker flag and demands --fleet (usage error 2).
status=0
"${RUN}" --shard 0/3 2> /dev/null || status=$?
[[ "${status}" -eq 2 ]] \
  || { echo "fleet_smoke: --shard without --fleet exited ${status}, want 2" >&2
       exit 1; }

echo "fleet_smoke: OK (200 cells, 2 cohorts, 3 shards, byte-stable re-merge)"
