#!/usr/bin/env bash
# Smoke test for the SMP kernel simulation (wdmlat_run --cores / nt_smp*):
#
#   * a 2-core migrating-DPC cell runs end to end with the trace and metrics
#     sinks attached; the Chrome trace is well-formed (flows paired) and
#     carries per-core track metadata (cpu1 thread/dpc/lockout rows exist
#     only when a second core is simulated)
#   * metrics.json reports cross-core traffic: smp.ipis_delivered and the
#     spinlock counters are present, and IPI conservation held (the
#     run finishes; the armed auditor would have failed the cell otherwise)
#   * the same cell re-run gives byte-identical trace + metrics artifacts
#     (SMP determinism at the artifact level)
#   * a supervised NT-UP vs NT-SMP matrix (--matrix --cores 2, auditor
#     armed every virtual second) completes with zero failed cells
#   * the CLI contract holds: --cores on a non-NT cell, --dpc-affinity
#     without an SMP cell, and out-of-range --cores are usage errors
#     (exit 2), never runs
#
# Registered as the `smp_smoke` ctest; also runnable standalone from the
# repo root:
#
#   ci/smp_smoke.sh                   # builds nothing, expects build/ to exist
#   BUILD_DIR=build-foo ci/smp_smoke.sh

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
RUN="${BUILD_DIR}/cli/wdmlat_run"
CHECK="${BUILD_DIR}/cli/wdmlat_json_check"

if [[ ! -x "${RUN}" || ! -x "${CHECK}" ]]; then
  echo "smp_smoke: missing ${RUN} or ${CHECK}; build the tree first" >&2
  exit 1
fi

OUT="$(mktemp -d "${TMPDIR:-/tmp}/wdmlat_smp_smoke.XXXXXX")"
trap 'rm -rf "${OUT}"' EXIT

# One 2-core cell, migrating DPCs (the policy with the most cross-core
# traffic), every sink attached.
"${RUN}" --os nt4 --cores 2 --dpc-affinity migrating --workload games \
  --minutes 0.1 --seed 1999 \
  --trace-out "${OUT}/trace.json" \
  --metrics-out "${OUT}/metrics.json" > "${OUT}/run.log"

"${CHECK}" "${OUT}/trace.json" --require-key=traceEvents --require-key=displayTimeUnit \
  --check-flows
"${CHECK}" "${OUT}/metrics.json" --require-key=counters

# Per-core tracks: the second core's rows must be named in the trace.
for track in "cpu1: thread" "cpu1: dpc" "cpu1: dispatch lockout"; do
  grep -q "${track}" "${OUT}/trace.json" \
    || { echo "smp_smoke: trace is missing the \"${track}\" track" >&2; exit 1; }
done

# Cross-core traffic surfaced in the metrics registry.
for counter in smp.ipis_delivered smp.cross_core_wakes smp.spinlock_contentions; do
  grep -q "${counter}" "${OUT}/metrics.json" \
    || { echo "smp_smoke: metrics missing ${counter}" >&2; exit 1; }
done

# Artifact-level determinism: the identical cell again, byte-identical sinks.
"${RUN}" --os nt4 --cores 2 --dpc-affinity migrating --workload games \
  --minutes 0.1 --seed 1999 \
  --trace-out "${OUT}/trace2.json" \
  --metrics-out "${OUT}/metrics2.json" > "${OUT}/run2.log"
cmp -s "${OUT}/trace.json" "${OUT}/trace2.json" \
  || { echo "smp_smoke: trace bytes differ across identical runs" >&2; exit 1; }
cmp -s "${OUT}/metrics.json" "${OUT}/metrics2.json" \
  || { echo "smp_smoke: metrics bytes differ across identical runs" >&2; exit 1; }

# NT-UP vs NT-SMP grid: --matrix --cores 2 appends the SMP column; the
# armed auditor (--audit-every-s) runs the per-core IRQL + spinlock +
# runqueue + IPI-conservation checks inside every cell.
"${RUN}" --matrix --cores 2 --jobs 4 --trials 1 --minutes 0.05 --seed 1999 \
  --audit-every-s 1 > "${OUT}/matrix.log"
grep -q "SMP2" "${OUT}/matrix.log" \
  || { echo "smp_smoke: matrix ran without the NT-SMP column" >&2; exit 1; }

# CLI contract: SMP flags are strictly validated — config errors exit 2
# before any cell runs.
expect_usage_error() {
  local label="$1"; shift
  if "$@" > "${OUT}/err.out" 2> "${OUT}/err.log"; then
    echo "smp_smoke: ${label} should fail" >&2; exit 1
  else
    [[ $? -eq 2 ]] || { echo "smp_smoke: ${label} should exit 2" >&2; exit 1; }
  fi
  [[ ! -s "${OUT}/err.out" ]] \
    || { echo "smp_smoke: ${label} diagnostic leaked to stdout" >&2; exit 1; }
}
expect_usage_error "--cores on win98" "${RUN}" --os win98 --cores 2
expect_usage_error "--dpc-affinity without SMP" "${RUN}" --os nt4 --dpc-affinity migrating
expect_usage_error "--cores out of range" "${RUN}" --os nt4 --cores 64
expect_usage_error "--cores on an nt_smp alias" "${RUN}" --os nt_smp2 --cores 2

echo "smp_smoke: OK"
