#!/usr/bin/env bash
# Perf smoke test for the engine hot path: run the micro benchmarks on a
# short budget, convert the google-benchmark JSON into the repo schema with
# bench_to_json, validate it with wdmlat_json_check, and compare against the
# committed baseline at bench/baselines/BENCH_micro.json.
#
# The comparison uses a deliberately generous --max-ratio (3x): shared CI
# boxes are noisy and the short --benchmark_min_time keeps this test fast,
# so only order-of-magnitude regressions — an allocation re-introduced on
# the schedule path, an accidental O(n) scan per event — should trip it.
# After an intentional perf change, re-generate the baseline (see
# EXPERIMENTS.md, "Microbenchmark baselines").
#
# Registered as the `perf_smoke` ctest; also runnable standalone:
#
#   ci/perf_smoke.sh                  # builds nothing, expects build/ to exist
#   BUILD_DIR=build-foo ci/perf_smoke.sh

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
BENCH="${BUILD_DIR}/bench/micro_kernel_ops"
TO_JSON="${BUILD_DIR}/bench/bench_to_json"
CHECK="${BUILD_DIR}/cli/wdmlat_json_check"
BASELINE="bench/baselines/BENCH_micro.json"
MAX_RATIO="${MAX_RATIO:-3.0}"

for bin in "${BENCH}" "${TO_JSON}" "${CHECK}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "perf_smoke: missing ${bin}; build the tree first" >&2
    exit 1
  fi
done
if [[ ! -f "${BASELINE}" ]]; then
  echo "perf_smoke: missing ${BASELINE}; see EXPERIMENTS.md to regenerate" >&2
  exit 1
fi

OUT="$(mktemp -d "${TMPDIR:-/tmp}/wdmlat_perf_smoke.XXXXXX")"
trap 'rm -rf "${OUT}"' EXIT

# Engine/histogram micro loops plus the SMP round-trip pair (those advance
# only 100 virtual µs per iteration, so they fit the budget); the remaining
# full-system benchmarks simulate a virtual second per iteration and would
# dominate the smoke budget. Note the numeric --benchmark_min_time form (the
# bundled benchmark library predates the "0.2s" suffix syntax).
"${BENCH}" --benchmark_filter='BM_Engine|BM_Histogram|BM_SmpDispatch|BM_SpinlockHandoff' \
  --benchmark_min_time=0.2 \
  --benchmark_format=json > "${OUT}/raw.json"

"${TO_JSON}" --convert "${OUT}/raw.json" --source micro_kernel_ops \
  --out "${OUT}/BENCH_micro.json"
"${CHECK}" "${OUT}/BENCH_micro.json" --require-key=schema --require-key=source \
  --require-key=benchmarks
"${TO_JSON}" --compare "${BASELINE}" "${OUT}/BENCH_micro.json" --max-ratio "${MAX_RATIO}"

echo "perf_smoke: OK"
