#!/usr/bin/env bash
# Smoke test for the observability exporters: run a short experiment matrix
# with every sink attached, then validate the outputs.
#
#   * trace.json must be well-formed JSON with a traceEvents array
#     (Chrome trace-event format, viewable in Perfetto / chrome://tracing)
#   * metrics.json must be well-formed JSON with counters/gauges/histograms
#   * metrics.csv must have the kind,name,field,value header
#
# Validation uses wdmlat_json_check (the repo's own RFC 8259 linter) so the
# script needs no python or third-party JSON tooling. Registered as the
# `trace_smoke` ctest; also runnable standalone from the repo root:
#
#   ci/trace_smoke.sh                 # builds nothing, expects build/ to exist
#   BUILD_DIR=build-foo ci/trace_smoke.sh

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
RUN="${BUILD_DIR}/cli/wdmlat_run"
CHECK="${BUILD_DIR}/cli/wdmlat_json_check"

if [[ ! -x "${RUN}" || ! -x "${CHECK}" ]]; then
  echo "trace_smoke: missing ${RUN} or ${CHECK}; build the tree first" >&2
  exit 1
fi

OUT="$(mktemp -d "${TMPDIR:-/tmp}/wdmlat_trace_smoke.XXXXXX")"
trap 'rm -rf "${OUT}"' EXIT

# Short virtual matrix with every observability sink attached. --jobs 4 and
# the space-separated flag form deliberately mirror the documented usage.
"${RUN}" --matrix --jobs 4 --trials 1 --minutes 0.1 --seed 1999 \
  --trace-out "${OUT}/trace.json" \
  --metrics-out "${OUT}/metrics.json" \
  --metrics-csv "${OUT}/metrics.csv" \
  --episode-threshold-us 4000 > "${OUT}/run.log"

"${CHECK}" "${OUT}/trace.json" --require-key=traceEvents --require-key=displayTimeUnit
"${CHECK}" "${OUT}/metrics.json" --require-key=counters --require-key=gauges \
  --require-key=histograms

head -1 "${OUT}/metrics.csv" | grep -q '^kind,name,field,value$' \
  || { echo "trace_smoke: bad metrics CSV header" >&2; exit 1; }

# The single-cell path must also produce a parseable trace and print the
# attribution-accuracy report.
"${RUN}" --os win98 --workload office --sounds --minutes 0.1 --seed 42 \
  --episode-threshold-us 4000 --trace-out "${OUT}/cell.json" > "${OUT}/cell.log"
"${CHECK}" "${OUT}/cell.json" --require-key=traceEvents
grep -q "Attribution accuracy" "${OUT}/cell.log" \
  || { echo "trace_smoke: missing attribution report" >&2; exit 1; }

echo "trace_smoke: OK"
