#!/usr/bin/env bash
# Smoke test for the observability exporters: run a short experiment matrix
# with every sink attached, then validate the outputs.
#
#   * trace.json must be well-formed JSON with a traceEvents array
#     (Chrome trace-event format, viewable in Perfetto / chrome://tracing),
#     and every flow arrow ('s') must pair with exactly one finish ('f')
#   * metrics.json must be well-formed JSON with counters/gauges/histograms
#   * metrics.csv must have the kind,name,field,value header
#   * --anatomy-out must emit parseable episode JSON plus the rendered
#     anatomy report; --sketch must print the exact-tail quantile line
#   * --help must print the complete flag table to stdout and exit 0, and an
#     unknown flag must be rejected on stderr with exit 2 (strict parse)
#
# Validation uses wdmlat_json_check (the repo's own RFC 8259 linter) so the
# script needs no python or third-party JSON tooling. Registered as the
# `trace_smoke` ctest; also runnable standalone from the repo root:
#
#   ci/trace_smoke.sh                 # builds nothing, expects build/ to exist
#   BUILD_DIR=build-foo ci/trace_smoke.sh

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
RUN="${BUILD_DIR}/cli/wdmlat_run"
CHECK="${BUILD_DIR}/cli/wdmlat_json_check"

if [[ ! -x "${RUN}" || ! -x "${CHECK}" ]]; then
  echo "trace_smoke: missing ${RUN} or ${CHECK}; build the tree first" >&2
  exit 1
fi

OUT="$(mktemp -d "${TMPDIR:-/tmp}/wdmlat_trace_smoke.XXXXXX")"
trap 'rm -rf "${OUT}"' EXIT

# Short virtual matrix with every observability sink attached. --jobs 4 and
# the space-separated flag form deliberately mirror the documented usage.
"${RUN}" --matrix --jobs 4 --trials 1 --minutes 0.1 --seed 1999 \
  --trace-out "${OUT}/trace.json" \
  --metrics-out "${OUT}/metrics.json" \
  --metrics-csv "${OUT}/metrics.csv" \
  --episode-threshold-us 4000 > "${OUT}/run.log"

"${CHECK}" "${OUT}/trace.json" --require-key=traceEvents --require-key=displayTimeUnit \
  --check-flows
"${CHECK}" "${OUT}/metrics.json" --require-key=counters --require-key=gauges \
  --require-key=histograms

head -1 "${OUT}/metrics.csv" | grep -q '^kind,name,field,value$' \
  || { echo "trace_smoke: bad metrics CSV header" >&2; exit 1; }

# The single-cell path must also produce a parseable trace (flows paired),
# print the attribution-accuracy report, and — with the anatomy sink and the
# quantile sketch armed — emit the causal decomposition and the exact-tail
# quantile line.
"${RUN}" --os win98 --workload office --sounds --minutes 0.1 --seed 42 \
  --episode-threshold-us 4000 --trace-out "${OUT}/cell.json" \
  --anatomy-out "${OUT}/anatomy.json" --sketch > "${OUT}/cell.log"
"${CHECK}" "${OUT}/cell.json" --require-key=traceEvents --check-flows
"${CHECK}" "${OUT}/anatomy.json" --require-key=episodes --require-key=stage_totals_ms
grep -q "Attribution accuracy" "${OUT}/cell.log" \
  || { echo "trace_smoke: missing attribution report" >&2; exit 1; }
grep -q "Latency anatomy" "${OUT}/cell.log" \
  || { echo "trace_smoke: missing anatomy report" >&2; exit 1; }
grep -q "Quantile sketch" "${OUT}/cell.log" \
  || { echo "trace_smoke: missing sketch quantiles" >&2; exit 1; }

# --anatomy-out without the episode threshold is a config error, not a run.
if "${RUN}" --anatomy-out "${OUT}/never.json" 2> "${OUT}/anat_err.log"; then
  echo "trace_smoke: --anatomy-out without threshold should fail" >&2; exit 1
fi
grep -q "requires --episode-threshold-us" "${OUT}/anat_err.log" \
  || { echo "trace_smoke: missing anatomy flag diagnostic" >&2; exit 1; }

# CLI contract: --help prints the complete flag table to stdout, exit 0.
"${RUN}" --help > "${OUT}/help.txt"
for flag in --os --workload --priority --minutes --seed --scanner --sounds \
            --cores --dpc-affinity \
            --plot --csv-dir --worst-cases \
            --trace-out --metrics-out --metrics-csv --queue-sample-ms \
            --episode-threshold-us --anatomy-out --sketch \
            --faults --differential --diff-out --diff-csv \
            --matrix --jobs --trials \
            --journal --resume --cell-timeout-ms --cell-retries \
            --audit-every-s --max-cells --audit-fail-cell --throw-cell --help; do
  grep -q -- "${flag}" "${OUT}/help.txt" \
    || { echo "trace_smoke: --help is missing ${flag}" >&2; exit 1; }
done

# Strict parse: an unknown flag must never start a run (exit 2, stderr).
if "${RUN}" --no-such-flag > "${OUT}/unknown.out" 2> "${OUT}/unknown.err"; then
  echo "trace_smoke: unknown flag was accepted" >&2; exit 1
else
  [[ $? -eq 2 ]] || { echo "trace_smoke: unknown flag should exit 2" >&2; exit 1; }
fi
grep -q "unrecognized argument '--no-such-flag'" "${OUT}/unknown.err" \
  || { echo "trace_smoke: missing unknown-flag diagnostic" >&2; exit 1; }
[[ ! -s "${OUT}/unknown.out" ]] \
  || { echo "trace_smoke: unknown-flag diagnostic leaked to stdout" >&2; exit 1; }

echo "trace_smoke: OK"
