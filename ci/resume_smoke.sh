#!/usr/bin/env bash
# Smoke test for supervised, resumable matrix runs:
#
#   * a run interrupted by --max-cells exits 4 and leaves a resumable
#     journal (valid JSONL, one header + one line per finished cell)
#   * --resume restores the finished cells bit-exactly and re-runs the
#     rest: the merged table is byte-identical to an uninterrupted run,
#     at --jobs=1 and --jobs=4 alike
#   * the --audit-fail-cell fixture degrades exactly one cell to a
#     structured [invariant_violation] failure (exit 3) while every other
#     cell completes
#
# Registered as the `resume_smoke` ctest; also runnable standalone from the
# repo root:
#
#   ci/resume_smoke.sh                # builds nothing, expects build/ to exist
#   BUILD_DIR=build-foo ci/resume_smoke.sh

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
RUN="${BUILD_DIR}/cli/wdmlat_run"
CHECK="${BUILD_DIR}/cli/wdmlat_json_check"

if [[ ! -x "${RUN}" || ! -x "${CHECK}" ]]; then
  echo "resume_smoke: missing ${RUN} or ${CHECK}; build the tree first" >&2
  exit 1
fi

OUT="$(mktemp -d "${TMPDIR:-/tmp}/wdmlat_resume_smoke.XXXXXX")"
trap 'rm -rf "${OUT}"' EXIT

GRID=(--matrix --minutes 0.05 --seed 1999)

# Reference: the uninterrupted 16-cell grid. Its merged table (the lines
# naming an OS) is the byte-exact target every resumed run must reproduce.
"${RUN}" "${GRID[@]}" --jobs 1 > "${OUT}/ref.log"
grep '^  Windows' "${OUT}/ref.log" > "${OUT}/ref.rows"
[[ "$(wc -l < "${OUT}/ref.rows")" -eq 16 ]] \
  || { echo "resume_smoke: expected 16 merged rows in reference run" >&2; exit 1; }

# Interrupt after 6 of 16 cells: exit code 4, journal on disk.
status=0
"${RUN}" "${GRID[@]}" --jobs 1 --journal "${OUT}/run.jsonl" --max-cells 6 \
  > "${OUT}/interrupt.log" || status=$?
[[ "${status}" -eq 4 ]] \
  || { echo "resume_smoke: interrupted run exited ${status}, want 4" >&2; exit 1; }
grep -q 'interrupted after 6 cell(s)' "${OUT}/interrupt.log" \
  || { echo "resume_smoke: missing interruption notice" >&2; exit 1; }

# The journal is JSONL: header + 6 cell lines, each a valid JSON document.
[[ "$(wc -l < "${OUT}/run.jsonl")" -eq 7 ]] \
  || { echo "resume_smoke: journal should hold 1 header + 6 cells" >&2; exit 1; }
n=0
while IFS= read -r line; do
  n=$((n + 1))
  printf '%s\n' "${line}" > "${OUT}/journal_line.json"
  "${CHECK}" "${OUT}/journal_line.json" \
    || { echo "resume_smoke: journal line ${n} is not valid JSON" >&2; exit 1; }
done < "${OUT}/run.jsonl"

# Keep a pristine copy of the interrupted journal so both resumes start
# from the same checkpoint (resume appends to the journal it reads).
cp "${OUT}/run.jsonl" "${OUT}/run4.jsonl"
cp -r "${OUT}/run.jsonl.cells" "${OUT}/run4.jsonl.cells"

for jobs in 1 4; do
  journal="${OUT}/run.jsonl"
  [[ "${jobs}" -eq 4 ]] && journal="${OUT}/run4.jsonl"
  "${RUN}" "${GRID[@]}" --jobs "${jobs}" --resume "${journal}" \
    > "${OUT}/resume${jobs}.log"
  grep -q 'resumed: 6 cell(s) restored' "${OUT}/resume${jobs}.log" \
    || { echo "resume_smoke: --jobs=${jobs} resume did not restore 6 cells" >&2; exit 1; }
  grep '^  Windows' "${OUT}/resume${jobs}.log" > "${OUT}/resume${jobs}.rows"
  cmp -s "${OUT}/ref.rows" "${OUT}/resume${jobs}.rows" \
    || { echo "resume_smoke: --jobs=${jobs} resumed merge differs from fresh run" >&2; exit 1; }
done

# Crash isolation: a forced invariant violation in cell 2 fails exactly that
# cell with its taxonomy and a diagnostic bundle; the other 15 complete and
# the process exits 3.
status=0
"${RUN}" "${GRID[@]}" --jobs 2 --audit-fail-cell 2 \
  > "${OUT}/fixture.log" 2> "${OUT}/fixture.err" || status=$?
[[ "${status}" -eq 3 ]] \
  || { echo "resume_smoke: fixture run exited ${status}, want 3" >&2; exit 1; }
grep -q '\[invariant_violation\]' "${OUT}/fixture.err" \
  || { echo "resume_smoke: failure lacks invariant_violation taxonomy" >&2; exit 1; }
grep -q 'cell 2 ' "${OUT}/fixture.err" \
  || { echo "resume_smoke: failure does not name cell 2" >&2; exit 1; }
[[ "$(grep -c '^  ok:' "${OUT}/fixture.log")" -eq 15 ]] \
  || { echo "resume_smoke: expected the other 15 cells to complete" >&2; exit 1; }
grep -q '1 cell(s) failed out of 16' "${OUT}/fixture.err" \
  || { echo "resume_smoke: missing failure summary" >&2; exit 1; }

echo "resume_smoke: OK"
