#!/usr/bin/env bash
# ThreadSanitizer job for the parallel experiment-matrix runner.
#
# Builds the tree with -fsanitize=thread into a separate build directory and
# runs the concurrency-sensitive suites: the thread pool, the histogram-merge
# algebra, the quantile-sketch merge algebra (per-cell sketches fold on the
# coordinator thread after parallel cells finish), and the jobs=1-vs-jobs=4
# matrix determinism contract. Any data race in the parallel runner fails the
# job. The batched-dispatch reentrancy fuzz rides along so the engine's drain
# loop gets an instrumented shakeout in the same build, and the fleet
# determinism suite covers the shard runner's parallel cells funneling into
# the ordered record writer. The SMP determinism + cross-core fuzz suites run
# here too: SMP matrix cells exercise the parallel runner with per-core
# dispatcher state, the most state-rich payload the workers carry.
#
#   ci/tsan.sh              # from the repo root
#   BUILD_DIR=... ci/tsan.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$BUILD_DIR" -j \
  --target thread_pool_test histogram_merge_test matrix_determinism_test \
  batch_dispatch_fuzz_test quantile_sketch_test fleet_determinism_test \
  smp_determinism_test

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'ThreadPoolTest|HistogramMergeTest|SampleCountersTest|MatrixDeterminismTest|BatchDispatchFuzzTest|QuantileSketchTest|FleetDeterminism|SmpDeterminismTest|SmpFuzzTest'
