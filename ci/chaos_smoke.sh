#!/usr/bin/env bash
# Smoke test for the self-healing fleet supervisor (wdmlat_run --fleet with
# chaos, quarantine and speculation flags):
#
#   * a clean 120-cell, 2-cohort, 3-shard run establishes the reference
#     fleet.json
#   * --chaos-seed runs (SIGKILLed workers, torn/bit-flipped shard files,
#     stalled spawns) self-heal to a byte-identical fleet.json for three
#     different seeds — fault tolerance must not perturb the science
#   * re-running a chaos command over its healed artifacts restores every
#     cell (0 executed) and re-merges byte-identically
#   * --poison-cell forces a deterministically crashing cell: the supervisor
#     bisects it into <out>/quarantine.jsonl, the merge degrades gracefully
#     (exit 0) and fleet.json carries the explicit coverage gap
#   * the CLI contract holds: supervisor flags demand --fleet and refuse
#     --shard, and --help documents them
#
# Registered as the `chaos_smoke` ctest; also runnable standalone from the
# repo root:
#
#   ci/chaos_smoke.sh                 # builds nothing, expects build/ to exist
#   BUILD_DIR=build-foo ci/chaos_smoke.sh

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
RUN="${BUILD_DIR}/cli/wdmlat_run"
CHECK="${BUILD_DIR}/cli/wdmlat_json_check"

if [[ ! -x "${RUN}" || ! -x "${CHECK}" ]]; then
  echo "chaos_smoke: missing ${RUN} or ${CHECK}; build the tree first" >&2
  exit 1
fi

OUT="$(mktemp -d "${TMPDIR:-/tmp}/wdmlat_chaos_smoke.XXXXXX")"
trap 'rm -rf "${OUT}"' EXIT

# 120 screening-length cells across 2 cohorts and 3 shards: 40-cell shard
# windows sit square in HostChaos's 1-24 executed-cell kill range, so a
# chaos seed reliably murders workers mid-window instead of after the fact.
cat > "${OUT}/population.json" <<'EOF'
{
  "name": "chaos-population",
  "master_seed": 1999,
  "cohorts": [
    {
      "name": "nt-office",
      "os": "nt4",
      "workloads": ["office", "web"],
      "workload_weights": [3, 1],
      "count": 64,
      "stress_minutes": 0.0002,
      "warmup_seconds": 0.005,
      "pit_hz": 8000,
      "speed_mhz": [133, 450]
    },
    {
      "name": "98-games",
      "os": "win98",
      "workloads": ["games"],
      "count": 56,
      "stress_minutes": 0.0002,
      "warmup_seconds": 0.005,
      "pit_hz": 8000,
      "speed_mhz": [200, 400],
      "fault_plan": "irq_storm",
      "fault_prob": 0.3,
      "sketch": true
    }
  ]
}
EOF

BASE=(--fleet "${OUT}/population.json" --shards 3 --jobs 2)

# Reference: a clean supervised run.
"${RUN}" "${BASE[@]}" --fleet-out "${OUT}/clean" > "${OUT}/clean.log"
[[ -s "${OUT}/clean/fleet.json" ]] \
  || { echo "chaos_smoke: clean run left no fleet.json" >&2; exit 1; }
clean_sum="$(cksum < "${OUT}/clean/fleet.json")"

# Chaos determinism: three seeds, each self-healing to the reference bytes.
# At least one seed must actually perturb the run (supervisor stats line) —
# three all-clean draws would smoke-test nothing.
perturbed=0
for seed in 7 19 23; do
  "${RUN}" "${BASE[@]}" --fleet-out "${OUT}/chaos_${seed}" \
    --chaos-seed "${seed}" --shard-timeout-s 30 \
    > "${OUT}/chaos_${seed}.log"
  chaos_sum="$(cksum < "${OUT}/chaos_${seed}/fleet.json")"
  [[ "${chaos_sum}" == "${clean_sum}" ]] \
    || { echo "chaos_smoke: seed ${seed} fleet.json differs from clean run" >&2
         exit 1; }
  if grep -q '^supervisor:' "${OUT}/chaos_${seed}.log"; then
    perturbed=$((perturbed + 1))
  fi
done
[[ "${perturbed}" -ge 1 ]] \
  || { echo "chaos_smoke: no chaos seed perturbed the fleet" >&2; exit 1; }

# Resume over healed artifacts: same chaos command, everything restores
# (chaos kills count executed cells, and nothing executes), bytes hold.
"${RUN}" "${BASE[@]}" --fleet-out "${OUT}/chaos_7" \
  --chaos-seed 7 --shard-timeout-s 30 > "${OUT}/chaos_resume.log"
[[ "$(grep -c 'restored, 0 executed' "${OUT}/chaos_resume.log")" -eq 3 ]] \
  || { echo "chaos_smoke: chaos resume should restore all 3 shards" >&2
       exit 1; }
resume_sum="$(cksum < "${OUT}/chaos_7/fleet.json")"
[[ "${resume_sum}" == "${clean_sum}" ]] \
  || { echo "chaos_smoke: chaos resume re-merge differs" >&2; exit 1; }

# Poisoned cell: a deterministic per-cell crash is bisected into the
# quarantine manifest, the merge degrades gracefully, and the report
# carries the coverage gap explicitly. Exit 0 — degraded is a result.
"${RUN}" "${BASE[@]}" --fleet-out "${OUT}/poison" --poison-cell 13 \
  > "${OUT}/poison.log"
grep -q 'QUARANTINED 1 cell' "${OUT}/poison.log" \
  || { echo "chaos_smoke: poison run should report the quarantined cell" >&2
       exit 1; }
[[ -s "${OUT}/poison/quarantine.jsonl" ]] \
  || { echo "chaos_smoke: poison run left no quarantine manifest" >&2; exit 1; }
"${CHECK}" "${OUT}/poison/quarantine.jsonl" \
  --require-key=cell --require-key=seed --require-key=taxonomy \
  --require-key=attempts > /dev/null \
  || { echo "chaos_smoke: quarantine manifest failed json check" >&2; exit 1; }
grep -q '"cell": "13"' "${OUT}/poison/quarantine.jsonl" \
  || { echo "chaos_smoke: manifest should quarantine cell 13" >&2; exit 1; }
grep -q '"cells_quarantined": "1"' "${OUT}/poison/fleet.json" \
  || { echo "chaos_smoke: fleet.json should carry the coverage gap" >&2
       exit 1; }
"${CHECK}" "${OUT}/poison/fleet.json" \
  --require-key=format --require-key=fingerprint --require-key=cohorts \
  --require-key=quarantine \
  || { echo "chaos_smoke: degraded fleet.json failed json check" >&2; exit 1; }

# Poison resume: the manifest declares the gap, so the re-run restores the
# 119 completed cells, executes nothing, and re-merges byte-identically.
poison_sum="$(cksum < "${OUT}/poison/fleet.json")"
"${RUN}" "${BASE[@]}" --fleet-out "${OUT}/poison" --poison-cell 13 \
  > "${OUT}/poison_resume.log"
[[ "$(grep -c 'restored, 0 executed' "${OUT}/poison_resume.log")" -eq 3 ]] \
  || { echo "chaos_smoke: poison resume should restore all 3 shards" >&2
       exit 1; }
resume_poison_sum="$(cksum < "${OUT}/poison/fleet.json")"
[[ "${poison_sum}" == "${resume_poison_sum}" ]] \
  || { echo "chaos_smoke: poison resume re-merge differs" >&2; exit 1; }

# CLI contract: supervisor flags demand --fleet (usage error 2) and refuse
# to ride a worker invocation.
status=0
"${RUN}" --chaos-seed 7 2> /dev/null || status=$?
[[ "${status}" -eq 2 ]] \
  || { echo "chaos_smoke: --chaos-seed without --fleet exited ${status}, want 2" >&2
       exit 1; }
status=0
"${RUN}" "${BASE[@]}" --fleet-out "${OUT}/bad" --shard 0/3 --speculate \
  2> /dev/null || status=$?
[[ "${status}" -eq 2 ]] \
  || { echo "chaos_smoke: --speculate with --shard exited ${status}, want 2" >&2
       exit 1; }
for flag in --shard-timeout-s --shard-retries --speculate --chaos-seed \
            --poison-cell --quarantine; do
  "${RUN}" --help | grep -q -- "${flag}" \
    || { echo "chaos_smoke: --help does not document ${flag}" >&2; exit 1; }
done

echo "chaos_smoke: OK (3 chaos seeds byte-stable, poisoned cell quarantined)"
